// Unit tests for src/util: integer helpers, aligned buffers, RNG, stats,
// CLI parsing and table formatting.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>

#include "util/aligned_buffer.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/types.h"

namespace fastbfs {
namespace {

TEST(IntHelpers, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(4), 4u);
  EXPECT_EQ(ceil_pow2(5), 8u);
  EXPECT_EQ(ceil_pow2(1023), 1024u);
  EXPECT_EQ(ceil_pow2(1ull << 40), 1ull << 40);
  EXPECT_EQ(ceil_pow2((1ull << 40) + 1), 1ull << 41);
}

TEST(IntHelpers, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2((1ull << 33) + 5), 33u);
}

TEST(IntHelpers, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

class CeilPow2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CeilPow2Property, IsSmallestPowerOfTwoAtLeastX) {
  const std::uint64_t x = GetParam();
  const std::uint64_t p = ceil_pow2(x);
  EXPECT_EQ(p & (p - 1), 0u) << p << " not a power of two";
  EXPECT_GE(p, x);
  if (p > 1) {
    EXPECT_LT(p / 2, x);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CeilPow2Property,
                         ::testing::Values(1, 2, 3, 7, 9, 100, 1000, 4096,
                                           4097, 1u << 20, (1u << 20) + 1));

TEST(AlignedBuffer, AlignmentAndSize) {
  AlignedBuffer<std::uint32_t> b(1000, 64);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u);
  AlignedBuffer<std::uint8_t> p(10, kPageSize);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.data()) % kPageSize, 0u);
}

TEST(AlignedBuffer, FillZeroAndIndex) {
  AlignedBuffer<int> b(16);
  b.fill(7);
  for (const int x : b) EXPECT_EQ(x, 7);
  b.zero();
  for (const int x : b) EXPECT_EQ(x, 0);
  b[3] = 42;
  EXPECT_EQ(b.span()[3], 42);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(8);
  a.fill(3);
  int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
  AlignedBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(c[0], 3);
}

TEST(AlignedBuffer, EmptyIsSafe) {
  AlignedBuffer<int> b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.begin(), b.end());
  b.zero();  // no-op, must not crash
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
  }
  // Different seeds diverge immediately with overwhelming probability.
  Xoshiro256 a2(42);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 r(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 r(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // crude uniformity check
}

TEST(Rng, NextBelowCoversRange) {
  Xoshiro256 r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Stats, Basics) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(geo_mean(xs), 2.21336, 1e-4);
  EXPECT_NEAR(stdev(xs), 1.29099, 1e-4);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, EmptyInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geo_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stdev({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, Running) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  s.add(2.0);
  s.add(6.0);
  s.add(4.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--threads=8", "--verbose", "input.gr",
                        "--ratio=0.5"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("threads", 1), 8);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.5);
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.gr");
}

TEST(Cli, RejectsTrailingGarbageInNumbers) {
  const char* argv[] = {"prog", "--n-threads=8x", "--alpha=abc",
                        "--beta=1.5е"};  // Cyrillic е: classic paste typo
  CliArgs args(4, argv);
  EXPECT_THROW((void)args.get_int("n-threads", 1), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("alpha", 15.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("beta", 18.0), std::invalid_argument);
}

TEST(Cli, ErrorNamesTheFlag) {
  const char* argv[] = {"prog", "--n-threads=8x"};
  CliArgs args(2, argv);
  try {
    (void)args.get_int("n-threads", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("n-threads"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("8x"), std::string::npos);
  }
}

TEST(Cli, RejectsOutOfRangeNumbers) {
  const char* argv[] = {"prog", "--big=99999999999999999999999",
                        "--huge=1e99999"};
  CliArgs args(3, argv);
  EXPECT_THROW((void)args.get_int("big", 0), std::out_of_range);
  EXPECT_THROW((void)args.get_double("huge", 0.0), std::out_of_range);
}

TEST(Cli, AcceptsHexOctalAndNegatives) {
  const char* argv[] = {"prog", "--mask=0x10", "--neg=-3", "--sci=2.5e-2"};
  CliArgs args(4, argv);
  EXPECT_EQ(args.get_int("mask", 0), 16);
  EXPECT_EQ(args.get_int("neg", 0), -3);
  EXPECT_DOUBLE_EQ(args.get_double("sci", 0.0), 0.025);
}

TEST(Cli, RejectsMalformedBool) {
  const char* argv[] = {"prog", "--flag=maybe", "--off=off"};
  CliArgs args(3, argv);
  EXPECT_THROW((void)args.get_bool("flag", true), std::invalid_argument);
  EXPECT_FALSE(args.get_bool("off", true));
}

TEST(Cli, UnusedKeyDetection) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  CliArgs args(3, argv);
  (void)args.get_int("used", 0);
  const auto unused = args.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Table, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::uint64_t{12345}), "12345");
}

TEST(Timer, MtepsAndCycles) {
  EXPECT_DOUBLE_EQ(mteps(2'000'000, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(mteps(100, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(seconds_to_cycles(1.0, 2.93), 2.93e9);
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace fastbfs
