// Tests for the model's bottleneck analysis and the degree histogram.
#include <gtest/gtest.h>

#include "gen/rmat.h"
#include "gen/uniform.h"
#include "graph/stats.h"
#include "model/model.h"

namespace fastbfs {
namespace {

model::ModelInput worked_example() {
  model::ModelInput in;
  in.n_vertices = 8ull << 20;
  in.v_assigned = 4ull << 20;
  in.e_traversed = static_cast<std::uint64_t>(15.3 * (4ull << 20));
  in.depth = 6;
  in.n_pbv = 2;
  in.n_vis = 1;
  in.vis_bytes = (8ull << 20) / 8.0;
  return in;
}

TEST(Bottleneck, WorkedExampleIsDdrBound) {
  // In the App. D trace, DDR terms (2.88 + 1.8 + 0.21) dominate the LLC
  // term (2.0): doubling DDR bandwidth must be the biggest lever.
  const auto r =
      model::analyze_bottlenecks(worked_example(), model::nehalem_ep());
  EXPECT_STREQ(r.dominant(), "DDR bandwidth");
  EXPECT_GT(r.ddr_bandwidth, 1.3);
  EXPECT_LT(r.ddr_bandwidth, 2.0);
  // Every speedup is in [1, 2]: doubling one resource can at most double.
  for (const double s : {r.ddr_bandwidth, r.llc_read_bandwidth,
                         r.llc_write_bandwidth, r.l2_capacity}) {
    EXPECT_GE(s, 1.0 - 1e-9);
    EXPECT_LE(s, 2.0 + 1e-9);
  }
}

TEST(Bottleneck, LlcBoundWhenDdrIsHuge) {
  auto p = model::nehalem_ep();
  p.b_mem *= 100.0;
  p.b_mem_max *= 100.0;
  const auto r = model::analyze_bottlenecks(worked_example(), p);
  EXPECT_STREQ(r.dominant(), "LLC->L2 read bandwidth");
}

TEST(Bottleneck, L2CapacityMattersWhenVisBarelySpills) {
  // VIS partition slightly larger than L2: doubling |L2| makes it fully
  // resident and kills the entire LLC term.
  model::ModelInput in = worked_example();
  in.vis_bytes = 1.5 * 256.0 * 1024.0;
  auto p = model::nehalem_ep();
  p.b_mem *= 100.0;  // silence the DDR term
  p.b_mem_max *= 100.0;
  const auto r = model::analyze_bottlenecks(in, p);
  EXPECT_STREQ(r.dominant(), "L2 capacity");
}

TEST(Bottleneck, DegenerateInputSafe) {
  const auto r =
      model::analyze_bottlenecks(model::ModelInput{}, model::nehalem_ep());
  EXPECT_DOUBLE_EQ(r.ddr_bandwidth, 1.0);
}

TEST(DegreeHistogram, BucketsAreLog2) {
  // Degrees: v0 has 3 (bucket 2), v1..v3 have 1 (bucket 1), v4 isolated.
  const CsrGraph g = build_csr({{0, 1}, {0, 2}, {0, 3}}, 5);
  const auto h = degree_histogram_log2(g);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 1u);  // isolated
  EXPECT_EQ(h[1], 3u);  // degree 1
  EXPECT_EQ(h[2], 1u);  // degree in [2,4)
}

TEST(DegreeHistogram, RmatHasHeavyTailUniformDoesNot) {
  const auto rmat_h = degree_histogram_log2(rmat_graph(12, 16, 3));
  const auto ur_h = degree_histogram_log2(uniform_graph(4096, 16, 3));
  // R-MAT: some vertex reaches degree >= 256 (bucket >= 9); UR degrees
  // concentrate near 32 (buckets 5-7 only).
  EXPECT_GE(rmat_h.size(), 9u);
  EXPECT_LT(ur_h.size(), 9u);
  std::uint64_t total = 0;
  for (const auto c : ur_h) total += c;
  EXPECT_EQ(total, 4096u);
}

}  // namespace
}  // namespace fastbfs
