// Tests for the parallel CSR builder: structural equivalence with the
// serial counting-sort builder across options and thread counts.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/rmat.h"
#include "gen/uniform.h"
#include "graph/parallel_builder.h"
#include "graph/stats.h"

namespace fastbfs {
namespace {

/// Equality up to neighbour order (the parallel scatter is unordered).
void expect_same_graph(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.n_vertices(), b.n_vertices());
  ASSERT_EQ(a.n_edges(), b.n_edges());
  for (vid_t v = 0; v < a.n_vertices(); ++v) {
    auto na = a.neighbors(v);
    auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "degree mismatch at " << v;
    std::vector<vid_t> sa(na.begin(), na.end()), sb(nb.begin(), nb.end());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    ASSERT_EQ(sa, sb) << "adjacency mismatch at " << v;
  }
}

struct BuildCase {
  bool symmetrize;
  bool self_loops;
  unsigned threads;
};

class ParallelBuilder : public ::testing::TestWithParam<BuildCase> {};

TEST_P(ParallelBuilder, MatchesSerialBuilder) {
  const auto [symmetrize, self_loops, threads] = GetParam();
  EdgeList edges = generate_rmat(10, 8, 7);
  edges.push_back({3, 3});  // ensure a self loop exists
  BuildOptions opt;
  opt.symmetrize = symmetrize;
  opt.remove_self_loops = !self_loops;
  const CsrGraph serial = build_csr(edges, 1u << 10, opt);
  const CsrGraph parallel =
      build_csr_parallel(edges, 1u << 10, opt, threads);
  expect_same_graph(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelBuilder,
    ::testing::Values(BuildCase{true, false, 1}, BuildCase{true, false, 4},
                      BuildCase{false, false, 4}, BuildCase{true, true, 4},
                      BuildCase{false, true, 3}, BuildCase{true, false, 8}));

TEST(ParallelBuilderExtra, SortedNeighborsAreIdenticalToSerial) {
  const EdgeList edges = generate_uniform(800, 6, 8);
  BuildOptions opt;
  opt.sort_neighbors = true;
  const CsrGraph serial = build_csr(edges, 800, opt);
  const CsrGraph parallel = build_csr_parallel(edges, 800, opt, 4);
  // With sorted adjacency the two builders are bit-identical.
  for (vid_t v = 0; v < 800; ++v) {
    const auto a = serial.neighbors(v);
    const auto b = parallel.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << v;
  }
}

TEST(ParallelBuilderExtra, TraversalAgreesWithSerialBuild) {
  const EdgeList edges = generate_rmat(11, 8, 9);
  const CsrGraph serial = build_csr(edges, 1u << 11);
  const CsrGraph parallel = build_csr_parallel(edges, 1u << 11, {}, 4);
  const vid_t root = pick_nonisolated_root(serial, 1);
  const BfsResult a = reference_bfs(serial, root);
  const BfsResult b = reference_bfs(parallel, root);
  for (vid_t v = 0; v < serial.n_vertices(); ++v) {
    ASSERT_EQ(a.dp.depth(v), b.dp.depth(v)) << v;
  }
}

TEST(ParallelBuilderExtra, Rejections) {
  BuildOptions dedup;
  dedup.dedup = true;
  EXPECT_THROW(build_csr_parallel({{0, 1}}, 2, dedup, 2),
               std::invalid_argument);
  EXPECT_THROW(build_csr_parallel({{0, 9}}, 2, {}, 2),
               std::invalid_argument);
}

TEST(ParallelBuilderExtra, ZeroThreadsMeansOne) {
  const CsrGraph g = build_csr_parallel({{0, 1}}, 2, {}, 0);
  EXPECT_EQ(g.n_edges(), 2u);
}

}  // namespace
}  // namespace fastbfs
