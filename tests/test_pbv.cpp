// Unit tests for the PBV bins and the marker/pair stream encodings,
// including the mid-run lookback that Phase-II's work division relies on.
#include <gtest/gtest.h>

#include <vector>

#include "core/pbv.h"

namespace fastbfs {
namespace {

TEST(PbvBin, GrowsGeometricallyPreservingContents) {
  PbvBin bin;
  EXPECT_EQ(bin.capacity(), 0u);
  bin.reserve_extra(0, 10);
  EXPECT_GE(bin.capacity(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) bin.data()[i] = static_cast<svid_t>(i);
  bin.set_size(10);
  const std::uint32_t old_cap = bin.capacity();
  bin.reserve_extra(10, old_cap * 4);
  EXPECT_GE(bin.capacity(), 10 + old_cap * 4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(bin.data()[i], static_cast<svid_t>(i));
  }
}

TEST(PbvBinSet, AppendProtocol) {
  PbvBinSet set(3);
  set.begin_appends();
  auto* ptrs = set.bin_ptrs();
  auto* cur = set.cursors();
  set.ensure(0, 2);
  set.ensure(2, 1);
  ptrs[0][cur[0]++] = 11;
  ptrs[0][cur[0]++] = 12;
  ptrs[2][cur[2]++] = 13;
  set.commit_appends();
  EXPECT_EQ(set.bin(0).size(), 2u);
  EXPECT_EQ(set.bin(1).size(), 0u);
  EXPECT_EQ(set.bin(2).size(), 1u);
  EXPECT_EQ(set.total_entries(), 3u);
  EXPECT_EQ(set.bin(0).data()[1], 12);

  set.clear_all();
  EXPECT_EQ(set.total_entries(), 0u);
}

TEST(PbvBinSet, EnsureGrowsMidStream) {
  PbvBinSet set(1);
  set.begin_appends();
  for (std::uint32_t i = 0; i < 10000; ++i) {
    set.ensure(0, 1);
    set.bin_ptrs()[0][set.cursors()[0]++] = static_cast<svid_t>(i);
  }
  set.commit_appends();
  ASSERT_EQ(set.bin(0).size(), 10000u);
  for (std::uint32_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(set.bin(0).data()[i], static_cast<svid_t>(i));
  }
}

TEST(PbvBinSet, AppendsAccumulateAcrossProtocolRounds) {
  PbvBinSet set(1);
  for (int round = 0; round < 3; ++round) {
    set.begin_appends();
    set.ensure(0, 2);
    set.bin_ptrs()[0][set.cursors()[0]++] = round;
    set.bin_ptrs()[0][set.cursors()[0]++] = round + 100;
    set.commit_appends();
  }
  EXPECT_EQ(set.bin(0).size(), 6u);
  EXPECT_EQ(set.bin(0).data()[4], 2);
  EXPECT_EQ(set.bin(0).data()[5], 102);
}

// --- marker stream decoding -------------------------------------------

std::vector<svid_t> marker_stream() {
  // parent 7 -> children 1,2 ; parent 0 -> child 3 ; parent 9 -> (none) ;
  // parent 4 -> children 5,6.  Markers are ~parent.
  return {~svid_t{7}, 1, 2, ~svid_t{0}, 3, ~svid_t{9}, ~svid_t{4}, 5, 6};
}

using PairVec = std::vector<std::pair<vid_t, vid_t>>;

PairVec decode_markers(const std::vector<svid_t>& s, std::uint32_t b,
                       std::uint32_t e) {
  PairVec out;
  decode_marker_slice(s.data(), b, e,
                      [&](vid_t p, vid_t c) { out.push_back({p, c}); });
  return out;
}

TEST(MarkerDecode, FullStream) {
  const auto got = decode_markers(marker_stream(), 0, 9);
  const PairVec want = {{7, 1}, {7, 2}, {0, 3}, {4, 5}, {4, 6}};
  EXPECT_EQ(got, want);
}

TEST(MarkerDecode, MidRunStartLooksBackForParent) {
  // Start at index 2 (child '2' of parent 7): the backward scan must find
  // marker ~7 at index 0.
  const auto got = decode_markers(marker_stream(), 2, 5);
  const PairVec want = {{7, 2}, {0, 3}};
  EXPECT_EQ(got, want);
}

TEST(MarkerDecode, StartAtMarker) {
  const auto got = decode_markers(marker_stream(), 3, 9);
  const PairVec want = {{0, 3}, {4, 5}, {4, 6}};
  EXPECT_EQ(got, want);
}

TEST(MarkerDecode, VertexZeroParentIsRepresentable) {
  // The bitwise-NOT encoding must distinguish parent 0 (the paper's
  // negation cannot).
  const std::vector<svid_t> s = {~svid_t{0}, 42};
  const auto got = decode_markers(s, 0, 2);
  const PairVec want = {{0, 42}};
  EXPECT_EQ(got, want);
}

TEST(MarkerDecode, EmptyAndMarkerOnlySlices) {
  EXPECT_TRUE(decode_markers(marker_stream(), 4, 4).empty());
  // Slice covering only the childless marker ~9.
  EXPECT_TRUE(decode_markers(marker_stream(), 5, 6).empty());
}

TEST(MarkerDecode, SliceBoundariesTileTheStream) {
  // Any partition of [0,9) into slices must decode to the same multiset
  // as the full stream — this is what the thread division relies on.
  const auto whole = decode_markers(marker_stream(), 0, 9);
  for (std::uint32_t cut1 = 0; cut1 <= 9; ++cut1) {
    for (std::uint32_t cut2 = cut1; cut2 <= 9; ++cut2) {
      PairVec merged = decode_markers(marker_stream(), 0, cut1);
      const auto mid = decode_markers(marker_stream(), cut1, cut2);
      const auto tail = decode_markers(marker_stream(), cut2, 9);
      merged.insert(merged.end(), mid.begin(), mid.end());
      merged.insert(merged.end(), tail.begin(), tail.end());
      EXPECT_EQ(merged, whole) << "cuts " << cut1 << "," << cut2;
    }
  }
}

TEST(PairDecode, FullAndPartial) {
  const std::vector<svid_t> s = {7, 1, 7, 2, 0, 3};
  PairVec out;
  decode_pair_slice(s.data(), 0, 3,
                    [&](vid_t p, vid_t c) { out.push_back({p, c}); });
  const PairVec want = {{7, 1}, {7, 2}, {0, 3}};
  EXPECT_EQ(out, want);

  out.clear();
  decode_pair_slice(s.data(), 1, 2,
                    [&](vid_t p, vid_t c) { out.push_back({p, c}); });
  const PairVec want_mid = {{7, 2}};
  EXPECT_EQ(out, want_mid);
}

}  // namespace
}  // namespace fastbfs
