// Test-only allocation counter.
//
// tests/alloc_count.cpp replaces the global operator new/delete family
// (when built with -DFASTBFS_COUNT_ALLOCS, which tests/CMakeLists.txt sets
// for the test binary) with malloc-backed versions that bump a relaxed
// atomic counter. Tests read deltas of allocation_count() around a code
// region to *prove* it performed no heap allocation — the enforcement
// mechanism behind the engine's zero-allocation steady-state contract.
//
// When the flag is off, allocation_count() stays at zero; callers must
// probe with allocation_counting_active() and skip rather than vacuously
// pass.
#pragma once

#include <cstdint>

namespace fastbfs::testing {

/// Global operator-new invocations since process start (all threads).
std::uint64_t allocation_count();

/// True when the counting operator new is actually linked in. Implemented
/// as a volatile-pointer new/delete probe so the compiler cannot elide it.
bool allocation_counting_active();

}  // namespace fastbfs::testing
