// Unit tests for CSR construction, the edge-list builder, and the
// socket-partitioned 2-D adjacency array.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/rmat.h"
#include "graph/adjacency_array.h"
#include "graph/builder.h"
#include "graph/csr.h"

namespace fastbfs {
namespace {

TEST(Builder, SymmetrizeDoublesArcs) {
  const EdgeList edges = {{0, 1}, {1, 2}};
  const CsrGraph g = build_csr(edges, 3);
  EXPECT_EQ(g.n_vertices(), 3u);
  EXPECT_EQ(g.n_edges(), 4u);  // each undirected edge stored twice
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
  EXPECT_EQ(g.neighbors(1)[1], 2u);
}

TEST(Builder, DirectedKeepsArcsAsGiven) {
  BuildOptions opt;
  opt.symmetrize = false;
  const CsrGraph g = build_csr({{0, 1}, {0, 2}, {2, 1}}, 3, opt);
  EXPECT_EQ(g.n_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.degree(2), 1u);
}

TEST(Builder, RemovesSelfLoopsByDefault) {
  const CsrGraph g = build_csr({{0, 0}, {0, 1}}, 2);
  EXPECT_EQ(g.n_edges(), 2u);  // only the 0-1 edge, both directions
}

TEST(Builder, KeepsSelfLoopsWhenAsked) {
  BuildOptions opt;
  opt.remove_self_loops = false;
  opt.symmetrize = false;
  const CsrGraph g = build_csr({{0, 0}, {0, 1}}, 2, opt);
  EXPECT_EQ(g.n_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Builder, DedupDropsParallelEdges) {
  BuildOptions opt;
  opt.symmetrize = false;
  opt.dedup = true;
  const CsrGraph g = build_csr({{0, 1}, {0, 1}, {0, 2}, {0, 1}}, 3, opt);
  EXPECT_EQ(g.n_edges(), 2u);
}

TEST(Builder, SortNeighbors) {
  BuildOptions opt;
  opt.symmetrize = false;
  opt.sort_neighbors = true;
  const CsrGraph g = build_csr({{0, 5}, {0, 2}, {0, 9}, {0, 1}}, 10, opt);
  const auto n = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(Builder, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(build_csr({{0, 5}}, 3), std::invalid_argument);
}

TEST(Builder, AutoSizesVertexCount) {
  const CsrGraph g = build_csr_auto({{3, 7}});
  EXPECT_EQ(g.n_vertices(), 8u);
}

TEST(Builder, EmptyGraph) {
  const CsrGraph g = build_csr({}, 0);
  EXPECT_EQ(g.n_vertices(), 0u);
  EXPECT_EQ(g.n_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(Csr, RejectsMalformedOffsets) {
  AlignedBuffer<eid_t> offsets(3);
  offsets[0] = 0;
  offsets[1] = 5;
  offsets[2] = 2;  // decreasing
  AlignedBuffer<vid_t> targets(2);
  EXPECT_THROW(CsrGraph(std::move(offsets), std::move(targets)),
               std::invalid_argument);
}

TEST(Csr, AverageDegree) {
  const CsrGraph g = build_csr({{0, 1}, {1, 2}, {2, 3}}, 4);
  EXPECT_DOUBLE_EQ(g.average_degree(), 6.0 / 4.0);
}

class AdjacencyArraySockets : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdjacencyArraySockets, MatchesCsrExactly) {
  const unsigned sockets = GetParam();
  const CsrGraph g = rmat_graph(/*scale=*/10, /*edge_factor=*/8, /*seed=*/3);
  const AdjacencyArray adj(g, sockets);
  ASSERT_EQ(adj.n_vertices(), g.n_vertices());
  ASSERT_EQ(adj.n_edges(), g.n_edges());
  for (vid_t v = 0; v < g.n_vertices(); ++v) {
    ASSERT_EQ(adj.degree(v), g.degree(v)) << "vertex " << v;
    const auto a = adj.neighbors(v);
    const auto c = g.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), c.begin(), c.end()))
        << "vertex " << v;
    // Block layout: [degree, neighbours...].
    EXPECT_EQ(adj.block(v)[0], g.degree(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AdjacencyArraySockets,
                         ::testing::Values(1, 2, 3, 4));

TEST(AdjacencyArray, SocketOwnershipFollowsPartition) {
  const CsrGraph g = rmat_graph(8, 4, 5);
  const AdjacencyArray adj(g, 2);
  const VertexPartition& p = adj.partition();
  for (vid_t v = 0; v < g.n_vertices(); ++v) {
    EXPECT_EQ(adj.socket_of(v), p.socket_of_vertex(v));
  }
  // Slab accounting: 1 count word + degree words per vertex.
  std::size_t total_words = 0;
  for (unsigned s = 0; s < 2; ++s) total_words += adj.slab_bytes(s) / 4;
  EXPECT_EQ(total_words, g.n_vertices() + g.n_edges());
}

TEST(AdjacencyArray, BlockByteOffsetsAreMonotone) {
  const CsrGraph g = rmat_graph(9, 6, 11);
  const AdjacencyArray adj(g, 2);
  std::size_t prev = 0;
  for (vid_t v = 0; v < g.n_vertices(); ++v) {
    const std::size_t off = adj.block_byte_offset(v);
    if (v > 0) {
      EXPECT_GT(off, prev);
    }
    prev = off;
  }
}

TEST(AdjacencyArray, TotalPages) {
  const CsrGraph g = build_csr({{0, 1}}, 2);
  const AdjacencyArray adj(g, 1);
  // 2 vertices: blocks (1+1) + (1+1) = 4 words = 16 bytes -> 1 page.
  EXPECT_EQ(adj.total_pages(4096), 1u);
  EXPECT_EQ(adj.total_pages(8), 2u);
}

TEST(AdjacencyArray, IsolatedVerticesHaveEmptyBlocks) {
  const CsrGraph g = build_csr({{0, 1}}, 5);
  const AdjacencyArray adj(g, 2);
  for (vid_t v = 2; v < 5; ++v) {
    EXPECT_EQ(adj.degree(v), 0u);
    EXPECT_TRUE(adj.neighbors(v).empty());
  }
}

}  // namespace
}  // namespace fastbfs
