// Metrics registry (src/obs/metrics.h): instrument semantics, idempotent
// stable-pointer registration, the allocation-free warm-snapshot
// contract, engine integration (run epilogues + VIS audit counters), and
// the JSON / Prometheus serializations.
#include <gtest/gtest.h>

#include <sstream>

#include "alloc_count.h"
#include "core/api.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "obs/metrics.h"

namespace fastbfs {
namespace {

TEST(ObsMetrics, CounterGaugeHistogramBasics) {
  obs::Registry r;
  obs::Counter* c = r.counter("c");
  c->inc();
  c->add(41);
  EXPECT_EQ(c->value(), 42u);

  obs::Gauge* g = r.gauge("g");
  g->set(2.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);

  obs::Histogram* h = r.histogram("h");
  h->observe(0);    // bucket 0 (bit_width 0)
  h->observe(1);    // bucket 1
  h->observe(7);    // bucket 3: [4, 8)
  h->observe(8);    // bucket 4: [8, 16)
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->sum(), 16u);
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->bucket(3), 1u);
  EXPECT_EQ(h->bucket(4), 1u);
  EXPECT_EQ(r.size(), 3u);

  r.reset_values();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
}

TEST(ObsMetrics, RegistrationIsIdempotentWithStablePointers) {
  obs::Registry r;
  obs::Counter* a = r.counter("same");
  // Registering more instruments must not move earlier ones (deque), and
  // re-registering must return the same pointer, not a twin.
  for (int i = 0; i < 100; ++i) {
    r.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(r.counter("same"), a);
  a->inc();
  EXPECT_EQ(r.counter("same")->value(), 1u);
  // Same name, different type = different instrument namespace.
  EXPECT_NE(static_cast<void*>(r.gauge("same")), static_cast<void*>(a));
}

TEST(ObsMetrics, WarmSnapshotIsAllocationFree) {
  obs::Registry r;
  r.counter("a")->add(1);
  r.gauge("b")->set(2.0);
  r.histogram("c")->observe(3);

  obs::MetricsSnapshot snap;
  r.snapshot_into(snap);  // warm-up: sizes the samples vector
  ASSERT_EQ(snap.samples.size(), 3u);

  if (!testing::allocation_counting_active()) {
    GTEST_SKIP() << "allocation interposer not linked";
  }
  const std::uint64_t before = testing::allocation_count();
  for (int i = 0; i < 16; ++i) {
    r.counter("a")->inc();      // cached-pointer path in real call sites
    r.snapshot_into(snap);
  }
  EXPECT_EQ(testing::allocation_count(), before)
      << "warm snapshot_into or instrument updates allocated";
  EXPECT_EQ(snap.samples.size(), 3u);
}

TEST(ObsMetrics, SnapshotCarriesValuesAndNames) {
  obs::Registry r;
  r.counter("hits")->add(7);
  r.histogram("sizes")->observe(100);
  obs::MetricsSnapshot snap;
  r.snapshot_into(snap);
  ASSERT_EQ(snap.samples.size(), 2u);
  EXPECT_STREQ(snap.samples[0].name, "hits");
  EXPECT_EQ(snap.samples[0].type, obs::MetricSample::Type::kCounter);
  EXPECT_DOUBLE_EQ(snap.samples[0].value, 7.0);
  EXPECT_STREQ(snap.samples[1].name, "sizes");
  EXPECT_EQ(snap.samples[1].count, 1u);
  EXPECT_EQ(snap.samples[1].sum, 100u);
}

TEST(ObsMetrics, JsonAndPrometheusShape) {
  obs::Registry r;
  r.counter("requests_total")->add(3);
  r.gauge("temperature")->set(1.5);
  r.histogram("latency")->observe(5);

  std::ostringstream js;
  r.write_json(js);
  const std::string j = js.str();
  EXPECT_NE(j.find("\"metrics\""), std::string::npos);
  EXPECT_NE(j.find("\"requests_total\": 3"), std::string::npos);
  EXPECT_NE(j.find("\"temperature\": 1.5"), std::string::npos);
  EXPECT_NE(j.find("\"count\": 1"), std::string::npos);

  std::ostringstream prom;
  r.write_prometheus(prom);
  const std::string p = prom.str();
  EXPECT_NE(p.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(p.find("requests_total 3"), std::string::npos);
  EXPECT_NE(p.find("# TYPE temperature gauge"), std::string::npos);
  EXPECT_NE(p.find("# TYPE latency histogram"), std::string::npos);
  // 5 has bit_width 3; cumulative buckets end at +Inf with the total.
  EXPECT_NE(p.find("latency_bucket{le=\"7\"} 1"), std::string::npos);
  EXPECT_NE(p.find("latency_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(p.find("latency_sum 5"), std::string::npos);
  EXPECT_NE(p.find("latency_count 1"), std::string::npos);
}

TEST(ObsMetrics, EscapeLabelValueHandlesSpecials) {
  EXPECT_EQ(obs::escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::escape_label_value("line1\nline2"), "line1\\nline2");
  // All three specials together, in one value.
  EXPECT_EQ(obs::escape_label_value("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(obs::escape_label_value(""), "");
}

TEST(ObsMetrics, LabeledNameBuildsEscapedSelector) {
  EXPECT_EQ(obs::labeled_name("fam", {}), "fam");
  EXPECT_EQ(obs::labeled_name("fastbfs_hw_cycles", {{"phase", "phase2"}}),
            "fastbfs_hw_cycles{phase=\"phase2\"}");
  EXPECT_EQ(obs::labeled_name("m", {{"a", "1"}, {"b", "x\"y"}}),
            "m{a=\"1\",b=\"x\\\"y\"}");
}

TEST(ObsMetrics, PrometheusWriterEscapesLabeledInstruments) {
  obs::Registry r;
  const std::string name =
      obs::labeled_name("evil_total", {{"path", "a\\b\"c\nd"}});
  r.counter(name)->add(2);
  std::ostringstream prom;
  r.write_prometheus(prom);
  const std::string p = prom.str();
  // The TYPE line names the bare family, not the labeled selector.
  EXPECT_NE(p.find("# TYPE evil_total counter"), std::string::npos);
  // The sample line carries the escaped value — and no raw newline may
  // survive inside it (a raw newline would split the sample in two).
  EXPECT_NE(p.find("evil_total{path=\"a\\\\b\\\"c\\nd\"} 2"),
            std::string::npos);
  EXPECT_EQ(p.find("c\nd"), std::string::npos);
}

TEST(ObsMetrics, EngineRunPopulatesGlobalRegistry) {
  const CsrGraph g = rmat_graph(10, 8, 77);
  BfsRunner runner(g);
  obs::Registry& r = obs::metrics();
  const std::uint64_t runs_before = r.counter("fastbfs_runs_total")->value();
  const std::uint64_t edges_before =
      r.counter("fastbfs_edges_traversed_total")->value();

  const vid_t root = pick_nonisolated_root(g, 1);
  const BfsResult res = runner.run(root);

  EXPECT_EQ(r.counter("fastbfs_runs_total")->value(), runs_before + 1);
  EXPECT_EQ(r.counter("fastbfs_edges_traversed_total")->value(),
            edges_before + res.edges_traversed);
  EXPECT_GT(r.counter("fastbfs_steps_total")->value(), 0u);
  EXPECT_GT(r.gauge("fastbfs_last_run_seconds")->value(), 0.0);
  EXPECT_GE(r.gauge("fastbfs_last_pbv_bin_skew")->value(), 1.0);
  EXPECT_GT(r.histogram("fastbfs_frontier_vertices")->count(), 0u);
}

TEST(ObsMetrics, VisAuditSurfacesThroughRegistry) {
  const CsrGraph g = rmat_graph(9, 8, 5);
  BfsRunner runner(g);
  obs::Registry& r = obs::metrics();
  const std::uint64_t audits_before =
      r.counter("fastbfs_vis_audits_total")->value();

  const BfsResult res = runner.run(pick_nonisolated_root(g, 1));
  const VisAudit audit = runner.audit_vis(res);
  ASSERT_TRUE(audit.audited);
  EXPECT_EQ(r.counter("fastbfs_vis_audits_total")->value(),
            audits_before + 1);
  // A clean run contributes its (zero) missing/spurious counts.
  EXPECT_EQ(audit.spurious, 0u);
}

}  // namespace
}  // namespace fastbfs
