// Hardware-counter subsystem (src/obs/perf/): the graceful-degradation
// ladder and the full-PMU accounting path, driven through the injectable
// syscall seam (perf_syscall.h) so every state is reproducible on any
// machine — including ones where perf_event_open works fine.
//
// The contract under test, in order of importance:
//   - the engine's *output* is bit-identical whether perf_event_open
//     succeeds, fails with EACCES (perf_event_paranoid), or fails with
//     ENOSYS (seccomp / non-Linux) — counters observe, never steer;
//   - when only PMU events are denied (ENOENT: a VM without a PMU), the
//     subsystem degrades to the software group and reports kSoftwareOnly;
//   - a single unsupported event (stalled-cycles-backend on many cores)
//     is skipped without taking down its group;
//   - group reads are multiplex-corrected by time_enabled/time_running
//     and every scaled read is counted;
//   - span deltas land in the per-kind and per-(kind, step) tables and
//     the sample ring, and negative deltas clamp to zero.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/api.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "obs/perf/perf_counters.h"
#include "obs/perf/perf_syscall.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#endif

namespace fastbfs {
namespace {

namespace perf = obs::perf;

#if defined(__linux__)

// ---------------------------------------------------------------------------
// Fake perf_event syscall tables. A table's open() classifies the attr the
// subsystem built (type + config) and either refuses it or hands out a fake
// fd; read() then serves PERF_FORMAT_GROUP buffers from a deterministic
// value generator. File-scope state because Syscalls holds plain function
// pointers.

constexpr std::uint64_t fake_cache_config(unsigned cache, unsigned op,
                                          unsigned result) {
  return static_cast<std::uint64_t>(cache) |
         (static_cast<std::uint64_t>(op) << 8) |
         (static_cast<std::uint64_t>(result) << 16);
}

/// Maps an attr back to the HwEvent it requests, mirroring the descriptor
/// table in perf_counters.cpp; kCount when unrecognized.
perf::HwEvent classify(const perf_event_attr& attr) {
  using E = perf::HwEvent;
  if (attr.type == PERF_TYPE_HARDWARE) {
    switch (attr.config) {
      case PERF_COUNT_HW_CPU_CYCLES: return E::kCycles;
      case PERF_COUNT_HW_INSTRUCTIONS: return E::kInstructions;
      case PERF_COUNT_HW_BRANCH_MISSES: return E::kBranchMisses;
      case PERF_COUNT_HW_STALLED_CYCLES_BACKEND: return E::kStalledBackend;
    }
  } else if (attr.type == PERF_TYPE_HW_CACHE) {
    if (attr.config ==
        fake_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                          PERF_COUNT_HW_CACHE_RESULT_ACCESS)) {
      return E::kLlcLoads;
    }
    if (attr.config ==
        fake_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                          PERF_COUNT_HW_CACHE_RESULT_MISS)) {
      return E::kLlcLoadMisses;
    }
    if (attr.config == fake_cache_config(PERF_COUNT_HW_CACHE_DTLB,
                                         PERF_COUNT_HW_CACHE_OP_READ,
                                         PERF_COUNT_HW_CACHE_RESULT_MISS)) {
      return E::kDtlbLoadMisses;
    }
  } else if (attr.type == PERF_TYPE_SOFTWARE) {
    switch (attr.config) {
      case PERF_COUNT_SW_TASK_CLOCK: return E::kSwTaskClockNs;
      case PERF_COUNT_SW_PAGE_FAULTS: return E::kSwPageFaults;
    }
  }
  return E::kCount;
}

struct FakeGroup {
  int leader_fd = -1;
  std::vector<perf::HwEvent> events;
  std::uint64_t reads = 0;
};

struct FakePmu {
  int reject_errno = 0;        // nonzero: every open fails with this
  bool reject_hardware = false;  // PMU events fail ENOENT (VM, no PMU)
  bool reject_stalled = false;   // only stalled-cycles-backend fails
  // Group-read header: scale = enabled/running when running < enabled.
  std::uint64_t time_enabled = 1000;
  std::uint64_t time_running = 1000;
  // Each event's raw value is base_value * (event+1) * the owning group's
  // read count, so consecutive reads are monotone and a span delta is
  // exactly base_value * (event+1) per intervening read.
  std::uint64_t base_value = 100;

  int next_fd = 100;
  std::vector<FakeGroup> groups;
  unsigned opens = 0;
  unsigned closes = 0;
};

FakePmu g_pmu;

long fake_open(const void* attr_p, std::int32_t, std::int32_t,
               std::int32_t group_fd, unsigned long) {
  ++g_pmu.opens;
  if (g_pmu.reject_errno != 0) return -g_pmu.reject_errno;
  const auto& attr = *static_cast<const perf_event_attr*>(attr_p);
  const perf::HwEvent ev = classify(attr);
  if (ev == perf::HwEvent::kCount) return -EINVAL;
  const bool hw = attr.type != PERF_TYPE_SOFTWARE;
  if (g_pmu.reject_hardware && hw) return -ENOENT;
  if (g_pmu.reject_stalled && ev == perf::HwEvent::kStalledBackend) {
    return -ENOENT;
  }
  const int fd = g_pmu.next_fd++;
  if (group_fd < 0) {
    g_pmu.groups.push_back({fd, {ev}});
  } else {
    for (FakeGroup& g : g_pmu.groups) {
      if (g.leader_fd == group_fd) {
        g.events.push_back(ev);
        return fd;
      }
    }
    return -EBADF;  // member opened against an unknown leader
  }
  return fd;
}

long fake_read(int fd, void* buf, std::size_t count) {
  for (FakeGroup& g : g_pmu.groups) {
    if (g.leader_fd != fd) continue;
    ++g.reads;
    const std::size_t need = (3 + g.events.size()) * sizeof(std::uint64_t);
    if (count < need) return -ENOSPC;
    auto* out = static_cast<std::uint64_t*>(buf);
    out[0] = g.events.size();
    out[1] = g_pmu.time_enabled;
    out[2] = g_pmu.time_running;
    for (std::size_t i = 0; i < g.events.size(); ++i) {
      // Distinct per-event slopes so a value landing in the wrong table
      // column is visible.
      const auto e = static_cast<std::uint64_t>(g.events[i]);
      out[3 + i] = g_pmu.base_value * (e + 1) * g.reads;
    }
    return static_cast<long>(need);
  }
  return -EBADF;
}

long fake_close(int) {
  ++g_pmu.closes;
  return 0;
}

constexpr perf::Syscalls kFakeTable{fake_open, fake_read, fake_close};

/// Installs the fake table for one test; restores the real syscalls and
/// disarms on the way out so test order never matters.
struct FakePmuGuard {
  explicit FakePmuGuard(const FakePmu& setup) {
    perf::disarm();
    g_pmu = setup;
    perf::set_syscalls_for_testing(&kFakeTable);
  }
  ~FakePmuGuard() {
    perf::disarm();
    perf::set_syscalls_for_testing(nullptr);
    g_pmu = FakePmu{};
  }
};

std::uint64_t bit(perf::HwEvent e) {
  return std::uint64_t{1} << static_cast<unsigned>(e);
}

constexpr std::uint64_t kAllEvents = (1u << perf::kNumEvents) - 1;
constexpr std::uint64_t kSwEvents =
    (std::uint64_t{1} << static_cast<unsigned>(perf::HwEvent::kSwTaskClockNs)) |
    (std::uint64_t{1} << static_cast<unsigned>(perf::HwEvent::kSwPageFaults));

// ---------------------------------------------------------------------------

TEST(PerfCounters, EaccesMeansUnavailableAndArmFails) {
  FakePmu setup;
  setup.reject_errno = EACCES;
  FakePmuGuard guard(setup);

  EXPECT_FALSE(perf::arm());
  EXPECT_FALSE(perf::armed());
  EXPECT_EQ(perf::status(), perf::PerfStatus::kUnavailable);
  EXPECT_EQ(perf::available_mask(), 0u);
  EXPECT_NE(perf::status_string().find("EACCES"), std::string::npos);

  perf::Reading r;
  EXPECT_FALSE(perf::read_current(r));
  EXPECT_EQ(r.valid_mask, 0u);
}

TEST(PerfCounters, EnosysMeansUnavailableAndArmFails) {
  FakePmu setup;
  setup.reject_errno = ENOSYS;
  FakePmuGuard guard(setup);

  EXPECT_FALSE(perf::arm());
  EXPECT_EQ(perf::status(), perf::PerfStatus::kUnavailable);
  EXPECT_NE(perf::status_string().find("ENOSYS"), std::string::npos);
}

TEST(PerfCounters, NoPmuDegradesToSoftwareOnly) {
  FakePmu setup;
  setup.reject_hardware = true;
  FakePmuGuard guard(setup);

  EXPECT_TRUE(perf::arm());
  EXPECT_EQ(perf::status(), perf::PerfStatus::kSoftwareOnly);
  EXPECT_EQ(perf::available_mask(), kSwEvents);

  perf::Reading r;
  EXPECT_TRUE(perf::read_current(r));
  EXPECT_EQ(r.valid_mask, kSwEvents);
  EXPECT_GT(r.value[static_cast<unsigned>(perf::HwEvent::kSwTaskClockNs)], 0u);
  EXPECT_EQ(r.value[static_cast<unsigned>(perf::HwEvent::kCycles)], 0u);
}

TEST(PerfCounters, UnsupportedEventSkipsWithoutKillingItsGroup) {
  FakePmu setup;
  setup.reject_stalled = true;
  FakePmuGuard guard(setup);

  EXPECT_TRUE(perf::arm());
  EXPECT_EQ(perf::status(), perf::PerfStatus::kHardware);
  const std::uint64_t mask = perf::available_mask();
  EXPECT_EQ(mask, kAllEvents & ~bit(perf::HwEvent::kStalledBackend));

  perf::Reading r;
  EXPECT_TRUE(perf::read_current(r));
  // Group B lost its would-be leader; dTLB and branch misses still count.
  EXPECT_NE(r.valid_mask & bit(perf::HwEvent::kDtlbLoadMisses), 0u);
  EXPECT_NE(r.valid_mask & bit(perf::HwEvent::kBranchMisses), 0u);
  EXPECT_EQ(r.valid_mask & bit(perf::HwEvent::kStalledBackend), 0u);
}

TEST(PerfCounters, FullPmuAccumulatesSpanDeltas) {
  FakePmu setup;
  FakePmuGuard guard(setup);

  perf::PerfConfig cfg;
  cfg.max_steps = 8;
  ASSERT_TRUE(perf::arm(cfg));
  EXPECT_EQ(perf::status(), perf::PerfStatus::kHardware);
  EXPECT_EQ(perf::available_mask(), kAllEvents);
  EXPECT_TRUE(perf::arm(cfg)) << "arm() while armed is idempotent";

  perf::Reading start, end;
  ASSERT_TRUE(perf::read_current(start));
  ASSERT_TRUE(perf::read_current(end));
  EXPECT_EQ(start.valid_mask, kAllEvents);

  // The fake serves value = base * (event+1) * reads_served per group
  // read; between the two read_current calls every group was read exactly
  // once more, so the per-event delta is base * (event+1).
  constexpr unsigned kKind = 2, kStep = 3;
  perf::accumulate_span(kKind, kStep, start, end, /*sample=*/true);
  const perf::CounterTotals kt = perf::kind_totals(kKind);
  const perf::CounterTotals st = perf::step_totals(kKind, kStep);
  for (unsigned e = 0; e < perf::kNumEvents; ++e) {
    EXPECT_EQ(kt.value[e], setup.base_value * (e + 1)) << "event " << e;
    EXPECT_EQ(st.value[e], kt.value[e]) << "event " << e;
  }
  // Steps beyond max_steps fold into the last row, not out of bounds.
  perf::accumulate_span(kKind, 10'000, end, start, false);  // reversed:
  // a reversed (non-monotone) delta clamps to zero everywhere.
  const perf::CounterTotals after = perf::kind_totals(kKind);
  EXPECT_EQ(after.value[0], kt.value[0]);

  std::vector<perf::CounterSample> samples;
  perf::snapshot_samples(samples);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].kind, kKind);
  EXPECT_EQ(samples[0].delta[0], kt.value[0]);

  perf::clear_totals();
  EXPECT_EQ(perf::kind_totals(kKind).value[0], 0u);
  perf::snapshot_samples(samples);
  EXPECT_TRUE(samples.empty());
}

TEST(PerfCounters, MultiplexedReadsAreScaledAndCounted) {
  FakePmu setup;
  setup.time_enabled = 2000;
  setup.time_running = 1000;  // each group scheduled half the time
  FakePmuGuard guard(setup);

  ASSERT_TRUE(perf::arm());
  const std::uint64_t scaled_before = perf::multiplex_scaled();

  perf::Reading r;
  ASSERT_TRUE(perf::read_current(r));
  EXPECT_GT(perf::multiplex_scaled(), scaled_before);

  // Raw cycles on this (first post-arm) read would be base * 1 * reads;
  // the estimate doubles it. reads_served counts per group, and cycles
  // lives in the first-opened group, so its read index is known only
  // relative to the raw fake state — recompute from it.
  const auto cyc = static_cast<unsigned>(perf::HwEvent::kCycles);
  EXPECT_EQ(r.value[cyc] % 2, 0u) << "scaled by exactly 2.0";
  EXPECT_GT(r.value[cyc], 0u);
}

TEST(PerfCounters, NeverScheduledGroupProducesNoEstimate) {
  FakePmu setup;
  setup.time_enabled = 1000;
  setup.time_running = 0;  // counters never got PMU time
  FakePmuGuard guard(setup);

  ASSERT_TRUE(perf::arm());
  perf::Reading r;
  EXPECT_FALSE(perf::read_current(r));
  EXPECT_EQ(r.valid_mask, 0u);
}

TEST(PerfCounters, DisarmClosesEveryFd) {
  FakePmu setup;
  FakePmuGuard guard(setup);

  ASSERT_TRUE(perf::arm());
  perf::Reading r;
  ASSERT_TRUE(perf::read_current(r));  // claims this thread's slot + fds
  const unsigned opened = g_pmu.opens;
  EXPECT_GT(opened, 0u);
  perf::disarm();
  EXPECT_FALSE(perf::armed());
  // Probe fds (closed at arm) + this thread's fds (closed at disarm): no
  // descriptor outlives the subsystem.
  EXPECT_EQ(g_pmu.closes, opened);
  EXPECT_FALSE(perf::read_current(r));
}

// ---------------------------------------------------------------------------
// The one that matters: counters observe, never steer. The traversal's
// output must be bit-identical across the whole degradation ladder.

TEST(PerfCounters, EngineOutputBitIdenticalAcrossDegradation) {
  const CsrGraph g = rmat_graph(10, 8, 13);
  const vid_t root = pick_nonisolated_root(g, 1);
  // Single worker: with multiple threads, equal-depth parents race
  // benignly and the DP words are not run-to-run deterministic even
  // without counters — one thread makes "bit-identical" well-defined.
  BfsOptions opts;
  opts.n_threads = 1;
  opts.n_sockets = 1;
  BfsRunner runner(g, opts);

  auto run_dp = [&]() {
    const BfsResult& r = runner.run(root);
    std::vector<std::uint64_t> dp(g.n_vertices());
    std::memcpy(dp.data(), r.dp.data(), dp.size() * sizeof(std::uint64_t));
    return dp;
  };

  const std::vector<std::uint64_t> baseline = run_dp();

  {
    FakePmu setup;
    setup.reject_errno = EACCES;
    FakePmuGuard guard(setup);
    EXPECT_FALSE(perf::arm());
    EXPECT_EQ(run_dp(), baseline) << "EACCES changed the traversal";
  }
  {
    FakePmu setup;
    setup.reject_errno = ENOSYS;
    FakePmuGuard guard(setup);
    EXPECT_FALSE(perf::arm());
    EXPECT_EQ(run_dp(), baseline) << "ENOSYS changed the traversal";
  }
  {
    FakePmu setup;  // full fake PMU, counters armed and reading
    FakePmuGuard guard(setup);
    EXPECT_TRUE(perf::arm());
    EXPECT_EQ(run_dp(), baseline) << "armed counters changed the traversal";
  }
}

#else  // !__linux__

TEST(PerfCounters, UnavailableOffLinux) {
  perf::disarm();
  EXPECT_FALSE(perf::arm());
  EXPECT_EQ(perf::status(), perf::PerfStatus::kUnavailable);
}

#endif

}  // namespace
}  // namespace fastbfs
