// Unit tests for the VIS structure: partition sizing (the paper's
// arithmetic), byte/bit semantics, and the benign-race tolerance that the
// atomic-free protocol depends on.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/vis.h"

namespace fastbfs {
namespace {

TEST(VisPartitions, PaperExample) {
  // Sec. III-A: |V| = 256M, |C| = 16MB -> |VIS| = 32MB -> 4 partitions.
  EXPECT_EQ(vis_partitions(256ull << 20, 16ull << 20), 4u);
}

TEST(VisPartitions, FitsInHalfLlcMeansOne) {
  // 8M vertices -> 1MB bits; 8MB LLC -> half is 4MB -> one partition.
  EXPECT_EQ(vis_partitions(8ull << 20, 8ull << 20), 1u);
}

TEST(VisPartitions, RoundsUpToPowerOfTwo) {
  // 3x half-LLC worth of bits -> 3 needed -> rounded to 4.
  const std::uint64_t llc = 1 << 20;
  const std::uint64_t vertices = 8ull * 3 * (llc / 2);  // |VIS| = 3*llc/2
  EXPECT_EQ(vis_partitions(vertices, llc), 4u);
}

TEST(VisPartitions, EachPartitionAtMostHalfLlc) {
  for (const std::uint64_t v : {1ull << 10, 1ull << 20, 5ull << 20,
                                (1ull << 24) + 3}) {
    for (const std::size_t llc : {std::size_t{1} << 14, std::size_t{1} << 18}) {
      const unsigned n = vis_partitions(v, llc);
      EXPECT_LE(ceil_div(ceil_div(v, 8), n), llc / 2)
          << "v=" << v << " llc=" << llc;
      EXPECT_EQ(n & (n - 1), 0u);
    }
  }
}

TEST(VisArray, ByteSemantics) {
  VisArray vis(100, VisArray::Kind::kByte);
  EXPECT_EQ(vis.storage_bytes(), 100u);
  EXPECT_FALSE(vis.test(42));
  vis.set(42);
  EXPECT_TRUE(vis.test(42));
  EXPECT_FALSE(vis.test(41));
  EXPECT_FALSE(vis.test(43));
  vis.clear();
  EXPECT_FALSE(vis.test(42));
}

TEST(VisArray, BitSemantics) {
  VisArray vis(100, VisArray::Kind::kBit);
  EXPECT_EQ(vis.storage_bytes(), 13u);  // ceil(100/8)
  for (const vid_t v : {0u, 7u, 8u, 63u, 64u, 99u}) {
    EXPECT_FALSE(vis.test(v));
    vis.set(v);
    EXPECT_TRUE(vis.test(v));
  }
  // Neighbours within the same byte unaffected.
  EXPECT_FALSE(vis.test(1));
  EXPECT_FALSE(vis.test(9));
}

TEST(VisArray, AtomicTestAndSetReturnsPrevious) {
  VisArray vis(64, VisArray::Kind::kBit);
  EXPECT_FALSE(vis.test_and_set_atomic(5));
  EXPECT_TRUE(vis.test_and_set_atomic(5));
  EXPECT_TRUE(vis.test(5));
  VisArray byte_vis(64, VisArray::Kind::kByte);
  EXPECT_FALSE(byte_vis.test_and_set_atomic(5));
  EXPECT_TRUE(byte_vis.test_and_set_atomic(5));
}

TEST(VisArray, PartitionMapping) {
  VisArray vis(1024, VisArray::Kind::kBit, 4);
  EXPECT_EQ(vis.n_partitions(), 4u);
  EXPECT_EQ(vis.partition_span(), 256u);
  EXPECT_EQ(vis.partition_of(0), 0u);
  EXPECT_EQ(vis.partition_of(255), 0u);
  EXPECT_EQ(vis.partition_of(256), 1u);
  EXPECT_EQ(vis.partition_of(1023), 3u);
}

TEST(VisArray, RejectsInvalidConfig) {
  EXPECT_THROW(VisArray(8, VisArray::Kind::kBit, 3), std::invalid_argument);
  EXPECT_THROW(VisArray(8, VisArray::Kind::kByte, 2), std::invalid_argument);
}

TEST(VisArray, AtomicSetsNeverLoseBitsUnderContention) {
  // fetch_or is immune to the lost-update race by construction; all bits
  // must survive even with every thread hammering the same byte range.
  VisArray vis(64, VisArray::Kind::kBit);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&vis, t] {
      for (vid_t v = static_cast<vid_t>(t); v < 64; v += 4) {
        vis.test_and_set_atomic(v);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (vid_t v = 0; v < 64; ++v) EXPECT_TRUE(vis.test(v)) << v;
}

TEST(VisArray, AtomicFreeSetsMayRaceButNeverFabricate) {
  // The atomic-free protocol tolerates *lost* sets (bit stays 0) but must
  // never show a bit for a vertex nobody set. Threads set disjoint
  // vertices that share bytes; afterwards every set bit must belong to
  // the set universe and un-set vertices outside it must read 0.
  VisArray vis(256, VisArray::Kind::kBit);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&vis, t] {
      for (vid_t v = static_cast<vid_t>(t); v < 128; v += 4) {
        vis.set(v);  // only vertices < 128 are ever set
      }
    });
  }
  for (auto& th : threads) th.join();
  for (vid_t v = 128; v < 256; ++v) {
    EXPECT_FALSE(vis.test(v)) << "fabricated bit " << v;
  }
}

}  // namespace
}  // namespace fastbfs
