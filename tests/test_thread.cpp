// Unit tests for the SPMD thread pool, spin barrier, range splitting and
// the chaos (schedule-perturbation) controller.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "thread/barrier.h"
#include "thread/chaos.h"
#include "thread/thread_pool.h"

namespace fastbfs {
namespace {

TEST(SplitRange, EvenAndUneven) {
  // 10 items over 3 parts: 4, 3, 3.
  EXPECT_EQ(split_range(10, 3, 0).begin, 0u);
  EXPECT_EQ(split_range(10, 3, 0).end, 4u);
  EXPECT_EQ(split_range(10, 3, 1).begin, 4u);
  EXPECT_EQ(split_range(10, 3, 1).end, 7u);
  EXPECT_EQ(split_range(10, 3, 2).end, 10u);
}

class SplitRangeProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, unsigned>> {};

TEST_P(SplitRangeProperty, TilesAndBalances) {
  const auto [n, parts] = GetParam();
  std::size_t covered = 0;
  std::size_t min_len = n + 1, max_len = 0;
  std::size_t expect_begin = 0;
  for (unsigned p = 0; p < parts; ++p) {
    const Range r = split_range(n, parts, p);
    EXPECT_EQ(r.begin, expect_begin);
    expect_begin = r.end;
    covered += r.size();
    min_len = std::min(min_len, r.size());
    max_len = std::max(max_len, r.size());
  }
  EXPECT_EQ(covered, n);
  EXPECT_LE(max_len - min_len, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplitRangeProperty,
                         ::testing::Values(std::pair{0ul, 4u},
                                           std::pair{1ul, 4u},
                                           std::pair{10ul, 1u},
                                           std::pair{10ul, 3u},
                                           std::pair{1000ul, 7u},
                                           std::pair{6ul, 6u},
                                           std::pair{5ul, 8u}));

TEST(SpinBarrier, SingleThreadPassesImmediately) {
  SpinBarrier bar(1);
  bar.arrive_and_wait();
  bar.arrive_and_wait();  // reusable
}

TEST(ThreadPool, RunsAllWorkersWithCorrectContexts) {
  SocketTopology topo(2, 4);
  ThreadPool pool(topo);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](const ThreadContext& ctx) {
    EXPECT_LT(ctx.thread_id, 4u);
    EXPECT_EQ(ctx.n_threads, 4u);
    EXPECT_EQ(ctx.n_sockets, 2u);
    EXPECT_EQ(ctx.socket_id, ctx.thread_id / 2);
    EXPECT_EQ(ctx.rank_on_socket, ctx.thread_id % 2);
    EXPECT_EQ(ctx.threads_on_socket, 2u);
    hits[ctx.thread_id].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  SocketTopology topo(1, 3);
  ThreadPool pool(topo);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.run([&](const ThreadContext&) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPool, InnerBarrierSynchronizesPhases) {
  SocketTopology topo(1, 4);
  ThreadPool pool(topo);
  std::vector<int> data(4, 0);
  std::atomic<bool> phase_error{false};
  pool.run([&](const ThreadContext& ctx) {
    data[ctx.thread_id] = static_cast<int>(ctx.thread_id) + 1;
    pool.barrier().arrive_and_wait();
    // After the barrier every thread must observe all writes.
    int sum = 0;
    for (const int d : data) sum += d;
    if (sum != 1 + 2 + 3 + 4) phase_error.store(true);
  });
  EXPECT_FALSE(phase_error.load());
}

TEST(ThreadPool, SingleThreadRunsInline) {
  SocketTopology topo(1, 1);
  ThreadPool pool(topo);
  bool ran = false;
  pool.run([&](const ThreadContext& ctx) {
    EXPECT_EQ(ctx.thread_id, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(SpinBarrier, CompletionHookUnderPerturbedArrivalOrder) {
  // The engine's plan-2 sharing rests on arrive_and_wait_then: whichever
  // thread arrives last runs the completion function, and its plain
  // (non-atomic) writes are visible to every thread after release. Here
  // each thread delays its arrival by a seeded chaos action drawn from a
  // per-(thread, round) stream, so over the rounds every thread gets to be
  // the last arriver — the hook must still run exactly once per crossing
  // and its writes must be visible without extra synchronization.
  constexpr unsigned kThreads = 4;
  constexpr int kRounds = 96;
  SpinBarrier bar(kThreads);
  std::vector<int> plan(kRounds, -1);  // stands in for the shared plan2_
  std::atomic<int> hook_runs{0};
  std::atomic<int> visibility_errors{0};
  chaos::Config cfg;
  cfg.seed = 2026;
  cfg.act_per_256 = 256;  // perturb every arrival
  cfg.max_sleep_us = 5;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        chaos::perform_action(chaos::action_for(
            cfg, chaos::Point::kBarrierArrive, t, static_cast<unsigned>(r)));
        bar.arrive_and_wait_then([&, r] {
          hook_runs.fetch_add(1, std::memory_order_relaxed);
          plan[r] = r * 31 + 7;
        });
        if (plan[r] != r * 31 + 7) {
          visibility_errors.fetch_add(1, std::memory_order_relaxed);
        }
        bar.arrive_and_wait();  // keep plan[r] reads inside round r
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(hook_runs.load(), kRounds);
  EXPECT_EQ(visibility_errors.load(), 0);
}

TEST(Chaos, ActionStreamIsAPureFunctionOfTheSeed) {
  chaos::Config a;
  a.seed = 7;
  chaos::Config b;
  b.seed = 7;
  chaos::Config c;
  c.seed = 8;
  bool any_action = false;
  bool seeds_differ = false;
  for (unsigned p = 0; p < static_cast<unsigned>(chaos::Point::kCount); ++p) {
    const auto point = static_cast<chaos::Point>(p);
    for (const unsigned tid : {0u, 3u}) {
      for (std::uint64_t visit = 0; visit < 200; ++visit) {
        const std::uint32_t x = chaos::action_for(a, point, tid, visit);
        EXPECT_EQ(x, chaos::action_for(b, point, tid, visit));
        any_action |= x != 0;
        seeds_differ |= x != chaos::action_for(c, point, tid, visit);
      }
    }
  }
  EXPECT_TRUE(any_action);
  EXPECT_TRUE(seeds_differ);
}

TEST(Chaos, DisabledControllerIgnoresHooks) {
  ASSERT_FALSE(chaos::enabled());
  const std::uint64_t before = chaos::injected_total();
  chaos::on_point(chaos::Point::kVisTestSet);
  EXPECT_EQ(chaos::injected_total(), before);
}

TEST(Chaos, EnabledControllerCountsAndRecordsVisits) {
  chaos::Config cfg;
  cfg.seed = 11;
  cfg.act_per_256 = 256;
  cfg.max_sleep_us = 1;  // keep the injected delays negligible
  cfg.max_yields = 1;
  cfg.max_spins = 16;
  chaos::enable(cfg);
  chaos::register_thread(2);
  for (int i = 0; i < 50; ++i) chaos::on_point(chaos::Point::kDpRecheck);
  EXPECT_EQ(chaos::visit_count(chaos::Point::kDpRecheck), 50u);
  EXPECT_EQ(chaos::injected_total(), 50u);  // act_per_256 = 256: all act
  const std::vector<std::uint32_t> trace = chaos::trace(2);
  ASSERT_EQ(trace.size(), 50u);
  for (const std::uint32_t entry : trace) {
    EXPECT_EQ(chaos::trace_point(entry), chaos::Point::kDpRecheck);
  }
  chaos::disable();
  chaos::register_thread(0);  // restore this thread's default lane
  EXPECT_EQ(chaos::current_thread(), 0u);
}

TEST(Chaos, MutationArmsAndDisarms) {
  ASSERT_TRUE(chaos::mutation_active(chaos::Mutation::kNone));
  chaos::set_mutation(chaos::Mutation::kSkipDpRecheck);
  EXPECT_TRUE(chaos::mutation_active(chaos::Mutation::kSkipDpRecheck));
  EXPECT_FALSE(chaos::mutation_active(chaos::Mutation::kDropVisStore));
  chaos::set_mutation(chaos::Mutation::kNone);
  EXPECT_TRUE(chaos::mutation_active(chaos::Mutation::kNone));
}

TEST(ThreadPool, ManyBarrierRounds) {
  SocketTopology topo(2, 4);
  ThreadPool pool(topo);
  // Each thread increments a shared epoch-guarded counter 50 times; any
  // barrier bug shows up as a torn epoch.
  std::vector<int> epoch_counts(50, 0);
  std::atomic<bool> error{false};
  pool.run([&](const ThreadContext& ctx) {
    for (int e = 0; e < 50; ++e) {
      if (ctx.thread_id == 0) epoch_counts[e] = e;
      pool.barrier().arrive_and_wait();
      if (epoch_counts[e] != e) error.store(true);
      pool.barrier().arrive_and_wait();
    }
  });
  EXPECT_FALSE(error.load());
}

}  // namespace
}  // namespace fastbfs
