// Unit tests for the SPMD thread pool, spin barrier and range splitting.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "thread/barrier.h"
#include "thread/thread_pool.h"

namespace fastbfs {
namespace {

TEST(SplitRange, EvenAndUneven) {
  // 10 items over 3 parts: 4, 3, 3.
  EXPECT_EQ(split_range(10, 3, 0).begin, 0u);
  EXPECT_EQ(split_range(10, 3, 0).end, 4u);
  EXPECT_EQ(split_range(10, 3, 1).begin, 4u);
  EXPECT_EQ(split_range(10, 3, 1).end, 7u);
  EXPECT_EQ(split_range(10, 3, 2).end, 10u);
}

class SplitRangeProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, unsigned>> {};

TEST_P(SplitRangeProperty, TilesAndBalances) {
  const auto [n, parts] = GetParam();
  std::size_t covered = 0;
  std::size_t min_len = n + 1, max_len = 0;
  std::size_t expect_begin = 0;
  for (unsigned p = 0; p < parts; ++p) {
    const Range r = split_range(n, parts, p);
    EXPECT_EQ(r.begin, expect_begin);
    expect_begin = r.end;
    covered += r.size();
    min_len = std::min(min_len, r.size());
    max_len = std::max(max_len, r.size());
  }
  EXPECT_EQ(covered, n);
  EXPECT_LE(max_len - min_len, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplitRangeProperty,
                         ::testing::Values(std::pair{0ul, 4u},
                                           std::pair{1ul, 4u},
                                           std::pair{10ul, 1u},
                                           std::pair{10ul, 3u},
                                           std::pair{1000ul, 7u},
                                           std::pair{6ul, 6u},
                                           std::pair{5ul, 8u}));

TEST(SpinBarrier, SingleThreadPassesImmediately) {
  SpinBarrier bar(1);
  bar.arrive_and_wait();
  bar.arrive_and_wait();  // reusable
}

TEST(ThreadPool, RunsAllWorkersWithCorrectContexts) {
  SocketTopology topo(2, 4);
  ThreadPool pool(topo);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](const ThreadContext& ctx) {
    EXPECT_LT(ctx.thread_id, 4u);
    EXPECT_EQ(ctx.n_threads, 4u);
    EXPECT_EQ(ctx.n_sockets, 2u);
    EXPECT_EQ(ctx.socket_id, ctx.thread_id / 2);
    EXPECT_EQ(ctx.rank_on_socket, ctx.thread_id % 2);
    EXPECT_EQ(ctx.threads_on_socket, 2u);
    hits[ctx.thread_id].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  SocketTopology topo(1, 3);
  ThreadPool pool(topo);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.run([&](const ThreadContext&) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPool, InnerBarrierSynchronizesPhases) {
  SocketTopology topo(1, 4);
  ThreadPool pool(topo);
  std::vector<int> data(4, 0);
  std::atomic<bool> phase_error{false};
  pool.run([&](const ThreadContext& ctx) {
    data[ctx.thread_id] = static_cast<int>(ctx.thread_id) + 1;
    pool.barrier().arrive_and_wait();
    // After the barrier every thread must observe all writes.
    int sum = 0;
    for (const int d : data) sum += d;
    if (sum != 1 + 2 + 3 + 4) phase_error.store(true);
  });
  EXPECT_FALSE(phase_error.load());
}

TEST(ThreadPool, SingleThreadRunsInline) {
  SocketTopology topo(1, 1);
  ThreadPool pool(topo);
  bool ran = false;
  pool.run([&](const ThreadContext& ctx) {
    EXPECT_EQ(ctx.thread_id, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, ManyBarrierRounds) {
  SocketTopology topo(2, 4);
  ThreadPool pool(topo);
  // Each thread increments a shared epoch-guarded counter 50 times; any
  // barrier bug shows up as a torn epoch.
  std::vector<int> epoch_counts(50, 0);
  std::atomic<bool> error{false};
  pool.run([&](const ThreadContext& ctx) {
    for (int e = 0; e < 50; ++e) {
      if (ctx.thread_id == 0) epoch_counts[e] = e;
      pool.barrier().arrive_and_wait();
      if (epoch_counts[e] != e) error.store(true);
      pool.barrier().arrive_and_wait();
    }
  });
  EXPECT_FALSE(error.load());
}

}  // namespace
}  // namespace fastbfs
