// Tests for the simulated distributed (multi-node) BFS.
#include <gtest/gtest.h>

#include "dist/cluster.h"
#include "gen/grid.h"
#include "gen/rmat.h"
#include "gen/uniform.h"
#include "graph/stats.h"
#include "graph/validate.h"

namespace fastbfs {
namespace {

class DistRanks : public ::testing::TestWithParam<unsigned> {};

TEST_P(DistRanks, MatchesReferenceAcrossGraphs) {
  const unsigned ranks = GetParam();
  const CsrGraph graphs[] = {rmat_graph(10, 8, 41), uniform_graph(1500, 5, 42),
                             grid_graph(30, 30, 1.0, 43)};
  for (const CsrGraph& g : graphs) {
    dist::DistributedBfs cluster(g, ranks);
    const vid_t root = pick_nonisolated_root(g, 3);
    const BfsResult r = cluster.run(root);
    const auto rep = validate_depths_match(g, r);
    ASSERT_TRUE(rep.ok) << "ranks=" << ranks << ": " << rep.error;
    ASSERT_TRUE(validate_bfs_tree(g, r).ok);
    const BfsResult ref = reference_bfs(g, root);
    EXPECT_EQ(r.vertices_visited, ref.vertices_visited);
    EXPECT_EQ(r.depth_reached, ref.depth_reached);
    EXPECT_EQ(r.edges_traversed, ref.edges_traversed);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistRanks, ::testing::Values(1, 2, 3, 8));

TEST(DistBfs, SingleRankSendsNoMessages) {
  const CsrGraph g = rmat_graph(9, 8, 44);
  dist::DistributedBfs cluster(g, 1);
  cluster.run(pick_nonisolated_root(g, 1));
  EXPECT_EQ(cluster.last_stats().total_messages, 0u);
}

TEST(DistBfs, MessageAccountingIsConsistent) {
  const CsrGraph g = uniform_graph(2000, 6, 45);
  dist::DistributedBfs cluster(g, 4);
  const vid_t root = pick_nonisolated_root(g, 2);
  const BfsResult r = cluster.run(root);
  const auto& s = cluster.last_stats();
  // Totals match the per-rank and per-step breakdowns.
  std::uint64_t by_rank = 0;
  for (const auto x : s.sent_by_rank) by_rank += x;
  EXPECT_EQ(by_rank, s.total_messages);
  std::uint64_t by_step = 0, discovered = 0;
  for (const auto& st : s.steps) {
    by_step += st.messages;
    discovered += st.local_updates;
  }
  EXPECT_EQ(by_step, s.total_messages);
  EXPECT_EQ(discovered + 1, r.vertices_visited);  // +1 for the root
  EXPECT_EQ(s.total_message_bytes, s.total_messages * 8);
  // Every traversed edge is either a message or an on-rank delivery.
  EXPECT_LE(s.total_messages, r.edges_traversed);
  EXPECT_EQ(s.supersteps, s.steps.size());
  EXPECT_GT(s.messages_per_edge(r.edges_traversed), 0.0);
}

TEST(DistBfs, MessageVolumeGrowsWithRanks) {
  // With uniform random neighbours a fraction (1 - 1/R) of edges cross
  // ranks, so message volume must increase monotonically in R.
  const CsrGraph g = uniform_graph(4096, 8, 46);
  const vid_t root = pick_nonisolated_root(g, 4);
  std::uint64_t prev = 0;
  for (const unsigned ranks : {2u, 4u, 8u}) {
    dist::DistributedBfs cluster(g, ranks);
    const BfsResult r = cluster.run(root);
    const std::uint64_t msgs = cluster.last_stats().total_messages;
    EXPECT_GT(msgs, prev) << ranks << " ranks";
    prev = msgs;
    // Expected crossing fraction ~ (1 - 1/R); allow wide slack.
    const double frac = static_cast<double>(msgs) /
                        static_cast<double>(r.edges_traversed);
    EXPECT_NEAR(frac, 1.0 - 1.0 / ranks, 0.1) << ranks << " ranks";
  }
}

TEST(DistBfs, IsolatedRootAndBadRoot) {
  const CsrGraph g = build_csr({{1, 2}}, 4);
  dist::DistributedBfs cluster(g, 2);
  const BfsResult r = cluster.run(0);
  EXPECT_EQ(r.vertices_visited, 1u);
  // One superstep runs (scanning the root's empty adjacency), then the
  // frontier is empty.
  EXPECT_EQ(cluster.last_stats().supersteps, 1u);
  EXPECT_EQ(cluster.last_stats().total_messages, 0u);
  EXPECT_THROW(cluster.run(9), std::invalid_argument);
}

TEST(DistBfs, OwnershipFollowsPowerOfTwoPartition) {
  const CsrGraph g = build_csr({{0, 1}}, 6);
  dist::DistributedBfs cluster(g, 2);
  EXPECT_EQ(cluster.owner_of(0), 0u);
  EXPECT_EQ(cluster.owner_of(3), 0u);  // |V_NS| = 4
  EXPECT_EQ(cluster.owner_of(4), 1u);
}

}  // namespace
}  // namespace fastbfs
