// Tests for connected components and giant-component root sampling.
#include <gtest/gtest.h>

#include "gen/rmat.h"
#include "graph/components.h"
#include "graph/stats.h"

namespace fastbfs {
namespace {

TEST(Components, TwoIslandsAndIsolated) {
  // {0,1,2} triangle, {4,5} edge, 3 isolated.
  const CsrGraph g = build_csr({{0, 1}, {1, 2}, {0, 2}, {4, 5}}, 6);
  const Components c = connected_components(g);
  ASSERT_EQ(c.count(), 2u);
  EXPECT_EQ(c.component_of[0], c.component_of[1]);
  EXPECT_EQ(c.component_of[0], c.component_of[2]);
  EXPECT_EQ(c.component_of[4], c.component_of[5]);
  EXPECT_NE(c.component_of[0], c.component_of[4]);
  EXPECT_EQ(c.component_of[3], Components::kNoComponent);

  const auto giant = c.giant_index();
  EXPECT_EQ(c.info[giant].n_vertices, 3u);
  EXPECT_EQ(c.info[giant].n_arcs, 6u);  // triangle symmetrized
  EXPECT_DOUBLE_EQ(c.giant_edge_fraction(g), 6.0 / 8.0);
}

TEST(Components, IsolatedAsSingletonsWhenAsked) {
  const CsrGraph g = build_csr({{0, 1}}, 4);
  const Components with = connected_components(g, /*skip_isolated=*/false);
  EXPECT_EQ(with.count(), 3u);  // {0,1}, {2}, {3}
  const Components without = connected_components(g, /*skip_isolated=*/true);
  EXPECT_EQ(without.count(), 1u);
}

TEST(Components, ConnectedGraphIsOneComponent) {
  const CsrGraph g = build_csr({{0, 1}, {1, 2}, {2, 3}}, 4);
  const Components c = connected_components(g);
  ASSERT_EQ(c.count(), 1u);
  EXPECT_EQ(c.info[0].n_vertices, 4u);
  EXPECT_EQ(c.info[0].n_arcs, g.n_edges());
  EXPECT_DOUBLE_EQ(c.giant_edge_fraction(g), 1.0);
}

TEST(Components, RmatGiantCoversMostEdges) {
  // The paper's ">98% of edges traversed" methodology relies on the RMAT
  // giant component holding almost all edges.
  const CsrGraph g = rmat_graph(12, 16, 71);
  const Components c = connected_components(g);
  EXPECT_GT(c.giant_edge_fraction(g), 0.98);
}

TEST(Components, GiantRootSampling) {
  const CsrGraph g = build_csr({{0, 1}, {1, 2}, {5, 6}}, 8);
  const Components c = connected_components(g);
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const vid_t root = pick_giant_component_root(g, c, seed);
    ASSERT_NE(root, kInvalidVertex);
    EXPECT_LE(root, 2u) << "root outside the giant component";
  }
}

TEST(Components, ReferenceBfsVisitsExactlyTheRootComponent) {
  const CsrGraph g = build_csr({{0, 1}, {1, 2}, {5, 6}, {6, 7}}, 9);
  const Components c = connected_components(g);
  const BfsResult r = reference_bfs(g, 5);
  const std::uint32_t root_comp = c.component_of[5];
  for (vid_t v = 0; v < g.n_vertices(); ++v) {
    EXPECT_EQ(r.dp.visited(v), c.component_of[v] == root_comp) << v;
  }
}

TEST(Components, EmptyGraph) {
  const CsrGraph g = build_csr({}, 0);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count(), 0u);
  EXPECT_DOUBLE_EQ(c.giant_edge_fraction(g), 0.0);
  EXPECT_EQ(pick_giant_component_root(g, c, 1), kInvalidVertex);
}

}  // namespace
}  // namespace fastbfs
