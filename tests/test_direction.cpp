// Direction-optimizing engine properties (DESIGN.md "Direction-optimizing
// extension"):
//   - kAuto stays strictly top-down on high-diameter graphs (path, grid),
//   - forced kBottomUp is correct on adversarial inputs (disconnected
//     graphs, isolated roots, self-loops, duplicate edges) and under every
//     VIS representation,
//   - the RunStats direction log replays decide_direction() step-for-step
//     and the incremental edge bookkeeping satisfies its defining
//     identities,
//   - kAuto runs are deterministic: same (graph, root, options) twice
//     gives the same step sequence and the same parent array,
//   - VisMode::kNone is transparently upgraded when bottom-up is possible.
#include <gtest/gtest.h>

#include <vector>

#include "core/api.h"
#include "core/two_phase_bfs.h"
#include "gen/grid.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "graph/validate.h"

namespace fastbfs {
namespace {

BfsOptions direction_opts(DirectionMode mode) {
  BfsOptions o;
  o.n_threads = 4;
  o.n_sockets = 2;
  o.direction = mode;
  return o;
}

void expect_matches_reference(const CsrGraph& g, const BfsResult& r,
                              const char* what) {
  const BfsResult ref = reference_bfs(g, r.root);
  ASSERT_EQ(r.dp.size(), ref.dp.size()) << what;
  for (vid_t v = 0; v < g.n_vertices(); ++v) {
    ASSERT_EQ(r.dp.depth(v), ref.dp.depth(v))
        << what << " diverges at vertex " << v;
  }
  EXPECT_EQ(r.vertices_visited, ref.vertices_visited) << what;
  EXPECT_EQ(r.depth_reached, ref.depth_reached) << what;
  const auto tree = validate_bfs_tree(g, r);
  EXPECT_TRUE(tree.ok) << what << ": " << tree.error;
}

// --- (a) kAuto never leaves top-down on high-diameter graphs ------------

TEST(Direction, AutoStaysTopDownOnGrid) {
  const CsrGraph g = grid_graph(64, 64, 1.0, 11);
  const AdjacencyArray adj(g, 2);
  TwoPhaseBfs engine(adj, direction_opts(DirectionMode::kAuto));
  engine.run(0);
  const RunStats& s = engine.last_run_stats();
  EXPECT_EQ(s.direction_switches, 0u);
  for (const StepStats& st : s.steps) {
    EXPECT_EQ(st.direction, StepDirection::kTopDown) << "step " << st.step;
  }
  EXPECT_EQ(s.bottom_up_probes, 0u);
}

TEST(Direction, AutoStaysTopDownOnPath) {
  // A 1 x N grid is a path: the frontier is a single vertex at every
  // level, the regime where a naive alpha-only test would flip to
  // bottom-up near exhaustion (unexplored edges -> 0).
  const CsrGraph g = grid_graph(1, 600, 1.0, 12);
  const AdjacencyArray adj(g, 2);
  TwoPhaseBfs engine(adj, direction_opts(DirectionMode::kAuto));
  engine.run(0);
  const RunStats& s = engine.last_run_stats();
  EXPECT_EQ(s.direction_switches, 0u);
  EXPECT_EQ(s.direction_string(), std::string(s.steps.size(), 'T'));
}

// --- (b) forced bottom-up on adversarial inputs -------------------------

TEST(Direction, BottomUpOnDisconnectedGraph) {
  // Two R-MAT islands with disjoint id ranges; bottom-up sweeps the whole
  // vertex range every step, so the unreached island must stay INF.
  EdgeList e = generate_rmat(8, 6, 21);
  const EdgeList second = generate_rmat(8, 6, 22);
  for (const Edge& x : second) e.push_back({x.u + 256, x.v + 256});
  const CsrGraph g = build_csr(e, 512);

  for (const VisMode vis : {VisMode::kAtomicBit, VisMode::kByte,
                            VisMode::kBit, VisMode::kPartitionedBit}) {
    BfsOptions o = direction_opts(DirectionMode::kBottomUp);
    o.vis_mode = vis;
    if (vis == VisMode::kPartitionedBit) o.llc_bytes_override = 64;
    const AdjacencyArray adj(g, o.n_sockets);
    TwoPhaseBfs engine(adj, o);
    for (const vid_t root : {vid_t{0}, vid_t{300}}) {
      BfsResult r = engine.run(root);
      expect_matches_reference(g, r, "forced bottom-up");
    }
    // Every step really ran bottom-up.
    for (const StepStats& st : engine.last_run_stats().steps) {
      EXPECT_EQ(st.direction, StepDirection::kBottomUp);
    }
    EXPECT_GT(engine.last_run_stats().bottom_up_probes, 0u);
  }
}

TEST(Direction, BottomUpFromIsolatedRoot) {
  const CsrGraph g = build_csr({{1, 2}}, 4);  // vertex 0 isolated
  const AdjacencyArray adj(g, 2);
  TwoPhaseBfs engine(adj, direction_opts(DirectionMode::kBottomUp));
  const BfsResult r = engine.run(0);
  EXPECT_EQ(r.vertices_visited, 1u);
  EXPECT_EQ(r.depth_reached, 0u);
  EXPECT_EQ(r.edges_traversed, 0u);
  EXPECT_TRUE(validate_bfs_tree(g, r).ok);
}

TEST(Direction, BottomUpWithSelfLoopsAndDuplicateEdges) {
  // Self-loops must never make a vertex its own BFS parent; duplicate
  // edges must not produce duplicate frontier entries.
  BuildOptions keep_everything;
  keep_everything.symmetrize = true;
  keep_everything.remove_self_loops = false;
  keep_everything.dedup = false;
  EdgeList e = generate_rmat(9, 8, 23);
  for (vid_t v = 0; v < 512; v += 7) e.push_back({v, v});    // self-loops
  for (vid_t v = 0; v + 1 < 512; v += 5) e.push_back({v, v + 1});
  for (vid_t v = 0; v + 1 < 512; v += 5) e.push_back({v, v + 1});  // dupes
  const CsrGraph g = build_csr(e, 512, keep_everything);

  const AdjacencyArray adj(g, 2);
  TwoPhaseBfs engine(adj, direction_opts(DirectionMode::kBottomUp));
  const BfsResult r = engine.run(pick_nonisolated_root(g, 1));
  expect_matches_reference(g, r, "bottom-up with loops/dupes");
  for (vid_t v = 0; v < g.n_vertices(); ++v) {
    if (v != r.root && r.dp.visited(v)) {
      EXPECT_NE(r.dp.parent(v), v) << "self-loop claimed as parent";
    }
  }
}

TEST(Direction, RejectsNonPositiveThresholds) {
  const CsrGraph g = rmat_graph(8, 4, 24);
  const AdjacencyArray adj(g, 2);
  BfsOptions o = direction_opts(DirectionMode::kAuto);
  o.alpha = 0.0;
  EXPECT_THROW(TwoPhaseBfs(adj, o), std::invalid_argument);
  o.alpha = 15.0;
  o.beta = -1.0;
  EXPECT_THROW(TwoPhaseBfs(adj, o), std::invalid_argument);
}

// --- (c) the RunStats log replays the documented decision rule ----------

TEST(Direction, AutoLogMatchesDecisionRuleStepForStep) {
  const CsrGraph g = rmat_graph(11, 8, 31);
  const AdjacencyArray adj(g, 2);
  BfsOptions o = direction_opts(DirectionMode::kAuto);
  TwoPhaseBfs engine(adj, o);
  const vid_t root = pick_nonisolated_root(g, 2);
  const BfsResult r = engine.run(root);
  expect_matches_reference(g, r, "kAuto");

  const RunStats& s = engine.last_run_stats();
  ASSERT_FALSE(s.steps.empty());

  // Low-diameter R-MAT at edge-factor 8 must actually exercise the
  // switch, otherwise this replay proves nothing.
  EXPECT_GE(s.direction_switches, 2u) << "log: " << s.direction_string();

  // Replay: the step-k direction is decide_direction applied to the
  // previous direction and the logged heuristic inputs.
  StepDirection prev = StepDirection::kTopDown;
  unsigned switches = 0;
  for (std::size_t k = 0; k < s.steps.size(); ++k) {
    const StepStats& st = s.steps[k];
    const StepDirection expected = decide_direction(
        prev, st.frontier_edges, st.unexplored_edges, st.frontier_size,
        g.n_vertices(), g.n_edges(), o.alpha, o.beta);
    EXPECT_EQ(st.direction, expected) << "step " << st.step;
    if (k > 0 && expected != prev) ++switches;
    prev = expected;
  }
  EXPECT_EQ(s.direction_switches, switches);

  // Bookkeeping identities: the root step sees everything-but-the-root
  // unexplored, and each step removes from unexplored_edges exactly the
  // out-edges of the frontier it discovered (the next step's m_f).
  EXPECT_EQ(s.steps[0].frontier_edges, adj.degree(root));
  EXPECT_EQ(s.steps[0].unexplored_edges,
            g.n_edges() - s.steps[0].frontier_edges);
  for (std::size_t k = 0; k + 1 < s.steps.size(); ++k) {
    EXPECT_EQ(s.steps[k + 1].unexplored_edges,
              s.steps[k].unexplored_edges - s.steps[k + 1].frontier_edges)
        << "between steps " << k + 1 << " and " << k + 2;
  }
}

// --- deterministic replay regression ------------------------------------

TEST(Direction, AutoRunsAreDeterministic) {
  // One thread per socket with static bin ownership makes even parent
  // choice single-writer, so two identical runs must agree bit-for-bit —
  // any divergence means a race in the direction/edge-count bookkeeping.
  const CsrGraph g = rmat_graph(11, 8, 41);
  const AdjacencyArray adj(g, 2);
  BfsOptions o;
  o.n_threads = 2;
  o.n_sockets = 2;
  o.scheme = SocketScheme::kSocketAware;
  o.direction = DirectionMode::kAuto;
  TwoPhaseBfs engine(adj, o);
  const vid_t root = pick_nonisolated_root(g, 3);

  const BfsResult first = engine.run(root);
  const RunStats a = engine.last_run_stats();
  const BfsResult second = engine.run(root);
  const RunStats& b = engine.last_run_stats();

  ASSERT_EQ(a.steps.size(), b.steps.size());
  EXPECT_GE(a.direction_switches, 1u) << "log: " << a.direction_string();
  EXPECT_EQ(a.direction_switches, b.direction_switches);
  for (std::size_t k = 0; k < a.steps.size(); ++k) {
    EXPECT_EQ(a.steps[k].direction, b.steps[k].direction) << "step " << k;
    EXPECT_EQ(a.steps[k].frontier_size, b.steps[k].frontier_size);
    EXPECT_EQ(a.steps[k].frontier_edges, b.steps[k].frontier_edges);
    EXPECT_EQ(a.steps[k].unexplored_edges, b.steps[k].unexplored_edges);
    EXPECT_EQ(a.steps[k].binned_items, b.steps[k].binned_items);
    EXPECT_EQ(a.steps[k].bottom_up_probes, b.steps[k].bottom_up_probes);
  }
  EXPECT_EQ(first.edges_traversed, second.edges_traversed);
  for (vid_t v = 0; v < g.n_vertices(); ++v) {
    ASSERT_EQ(first.dp.depth(v), second.dp.depth(v)) << v;
    ASSERT_EQ(first.dp.parent(v), second.dp.parent(v)) << v;
  }
}

// --- kNone-vis interaction guard ----------------------------------------

TEST(Direction, VisNoneUpgradedForBottomUpModes) {
  const CsrGraph g = rmat_graph(9, 8, 51);
  const AdjacencyArray adj(g, 2);

  for (const DirectionMode mode :
       {DirectionMode::kBottomUp, DirectionMode::kAuto}) {
    BfsOptions o = direction_opts(mode);
    o.vis_mode = VisMode::kNone;
    TwoPhaseBfs engine(adj, o);
    // Pinned behaviour: transparently upgraded to the bit array (not
    // rejected), because kNone has no bitmap for bottom-up probes.
    EXPECT_EQ(engine.options().vis_mode, VisMode::kBit);
    BfsResult r = engine.run(pick_nonisolated_root(g, 4));
    expect_matches_reference(g, r, "kNone upgraded");
  }

  // Pure top-down keeps the no-VIS comparison point untouched.
  BfsOptions td = direction_opts(DirectionMode::kTopDown);
  td.vis_mode = VisMode::kNone;
  TwoPhaseBfs engine(adj, td);
  EXPECT_EQ(engine.options().vis_mode, VisMode::kNone);
}

// --- mixed-mode sanity: auto equals forced variants ---------------------

TEST(Direction, AutoMatchesForcedModesOnRmat) {
  const CsrGraph g = rmat_graph(10, 16, 61);
  const AdjacencyArray adj(g, 2);
  const vid_t root = pick_nonisolated_root(g, 5);

  std::vector<BfsResult> results;
  for (const DirectionMode mode :
       {DirectionMode::kTopDown, DirectionMode::kBottomUp,
        DirectionMode::kAuto}) {
    TwoPhaseBfs engine(adj, direction_opts(mode));
    results.push_back(engine.run(root));
  }
  for (vid_t v = 0; v < g.n_vertices(); ++v) {
    ASSERT_EQ(results[0].dp.depth(v), results[1].dp.depth(v)) << v;
    ASSERT_EQ(results[0].dp.depth(v), results[2].dp.depth(v)) << v;
  }
  // The consumed-frontier accounting makes the work metric comparable
  // across directions: forced bottom-up counts exactly the out-edges of
  // the duplicate-free BFS levels; modes with top-down steps may add a
  // few benign-race duplicates on top, never fewer.
  EXPECT_GE(results[0].edges_traversed, results[1].edges_traversed);
  EXPECT_GE(results[2].edges_traversed, results[1].edges_traversed);
}

}  // namespace
}  // namespace fastbfs
