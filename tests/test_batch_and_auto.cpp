// Tests for the Graph500 batch runner and the footnote-2 auto VIS rule.
#include <gtest/gtest.h>

#include "core/api.h"
#include "gen/rmat.h"
#include "graph/stats.h"

namespace fastbfs {
namespace {

TEST(RunBatch, ValidatesAndAggregates) {
  const CsrGraph g = rmat_graph(10, 8, 61);
  BfsRunner runner(g);
  const BatchResult b = runner.run_batch(g, 6, /*seed=*/5);
  EXPECT_EQ(b.runs, 6u);
  EXPECT_EQ(b.validated, 6u);
  EXPECT_EQ(b.roots.size(), 6u);
  EXPECT_GT(b.min_teps, 0.0);
  EXPECT_GE(b.mean_teps, b.min_teps);
  EXPECT_GE(b.max_teps, b.mean_teps);
  // Harmonic <= arithmetic mean, always.
  EXPECT_LE(b.harmonic_teps, b.mean_teps + 1e-9);
  EXPECT_GE(b.harmonic_teps, b.min_teps - 1e-9);
  for (const vid_t root : b.roots) {
    EXPECT_GT(g.degree(root), 0u);
  }
}

TEST(RunBatch, EdgelessGraphProducesNoRuns) {
  const CsrGraph g = build_csr({}, 16);
  BfsRunner runner(g);
  const BatchResult b = runner.run_batch(g, 4, 1);
  EXPECT_EQ(b.runs, 0u);
  EXPECT_DOUBLE_EQ(b.harmonic_teps, 0.0);
}

TEST(AutoVis, PicksByteWhenVerticesFitLlc) {
  const CsrGraph g = rmat_graph(10, 8, 62);  // 1024 vertices
  const AdjacencyArray adj(g, 2);
  BfsOptions o;
  o.n_threads = 2;
  o.n_sockets = 2;
  o.vis_mode = VisMode::kAuto;
  o.llc_bytes_override = 1u << 20;  // |V| = 1024 <= 1MB -> byte
  TwoPhaseBfs engine(adj, o);
  EXPECT_EQ(engine.options().vis_mode, VisMode::kByte);
  EXPECT_EQ(engine.n_vis_partitions(), 1u);
}

TEST(AutoVis, PicksPartitionedBitsWhenLarge) {
  const CsrGraph g = rmat_graph(10, 8, 62);
  const AdjacencyArray adj(g, 2);
  BfsOptions o;
  o.n_threads = 2;
  o.n_sockets = 2;
  o.vis_mode = VisMode::kAuto;
  o.llc_bytes_override = 64;  // |V| = 1024 > 64 bytes -> partitioned
  TwoPhaseBfs engine(adj, o);
  EXPECT_EQ(engine.options().vis_mode, VisMode::kPartitionedBit);
  EXPECT_GT(engine.n_vis_partitions(), 1u);
  // And it still traverses correctly.
  const BfsResult r = engine.run(pick_nonisolated_root(g, 1));
  EXPECT_GT(r.vertices_visited, 1u);
}

}  // namespace
}  // namespace fastbfs
