#include "alloc_count.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

namespace fastbfs::testing {

std::uint64_t allocation_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

bool allocation_counting_active() {
  const std::uint64_t before = allocation_count();
  int* volatile p = new int(42);  // volatile: the pair cannot be elided
  delete p;
  return allocation_count() != before;
}

}  // namespace fastbfs::testing

#ifdef FASTBFS_COUNT_ALLOCS

namespace {

void* counted_malloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  std::size_t alignment = static_cast<std::size_t>(al);
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, n != 0 ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

// Throwing forms. The nothrow and array forms funnel here per the
// standard's default behaviour, but we replace them explicitly so every
// path is counted exactly once.
void* operator new(std::size_t n) { return counted_malloc(n); }
void* operator new[](std::size_t n) { return counted_malloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned(n, al);
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_malloc(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_malloc(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  try {
    return counted_aligned(n, al);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  try {
    return counted_aligned(n, al);
  } catch (...) {
    return nullptr;
  }
}

// All storage above comes from malloc/posix_memalign, so every delete form
// is plain free().
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // FASTBFS_COUNT_ALLOCS
