// Tests for thread pinning (best-effort by design: pinning must never be
// required for correctness, so the API reports rather than throws).
#include <gtest/gtest.h>

#include "core/api.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "graph/validate.h"
#include "thread/affinity.h"

namespace fastbfs {
namespace {

TEST(Affinity, OnlineCpuCountPositive) {
  EXPECT_GE(online_cpu_count(), 1u);
}

TEST(Affinity, PinWrapsAroundCpuCount) {
  // Pinning to any index must succeed on Linux (indices wrap).
  EXPECT_TRUE(pin_current_thread_to_cpu(0));
  EXPECT_TRUE(pin_current_thread_to_cpu(online_cpu_count() + 3));
  EXPECT_TRUE(pin_current_thread_for(1, 4));
  EXPECT_FALSE(pin_current_thread_for(0, 0));
}

TEST(Affinity, PinnedEngineStaysCorrect) {
  const CsrGraph g = rmat_graph(9, 8, 81);
  BfsOptions opts;
  opts.n_threads = 4;
  opts.n_sockets = 2;
  opts.pin_threads = true;
  BfsRunner runner(g, opts);
  const BfsResult r = runner.run(pick_nonisolated_root(g, 1));
  EXPECT_TRUE(validate_depths_match(g, r).ok);
}

}  // namespace
}  // namespace fastbfs
