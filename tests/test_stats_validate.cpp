// Unit tests for graph statistics, the reference BFS and the BFS-tree
// validator (including that each validation rule actually fires).
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/stats.h"
#include "graph/validate.h"

namespace fastbfs {
namespace {

CsrGraph path_graph(vid_t n) {
  EdgeList e;
  for (vid_t i = 0; i + 1 < n; ++i) e.push_back({i, i + 1});
  return build_csr(e, n);
}

CsrGraph star_graph(vid_t leaves) {
  EdgeList e;
  for (vid_t i = 1; i <= leaves; ++i) e.push_back({0, i});
  return build_csr(e, leaves + 1);
}

TEST(ReferenceBfs, PathDepths) {
  const CsrGraph g = path_graph(5);
  const BfsResult r = reference_bfs(g, 0);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(r.dp.depth(v), v);
  EXPECT_EQ(r.depth_reached, 4u);
  EXPECT_EQ(r.vertices_visited, 5u);
  EXPECT_EQ(r.edges_traversed, 8u);  // symmetrized path has 8 arcs
  EXPECT_EQ(r.dp.parent(0), 0u);
  EXPECT_EQ(r.dp.parent(3), 2u);
}

TEST(ReferenceBfs, MiddleRoot) {
  const CsrGraph g = path_graph(5);
  const BfsResult r = reference_bfs(g, 2);
  EXPECT_EQ(r.dp.depth(0), 2u);
  EXPECT_EQ(r.dp.depth(2), 0u);
  EXPECT_EQ(r.dp.depth(4), 2u);
  EXPECT_EQ(r.depth_reached, 2u);
}

TEST(ReferenceBfs, DisconnectedLeavesInf) {
  const CsrGraph g = build_csr({{0, 1}, {2, 3}}, 4);
  const BfsResult r = reference_bfs(g, 0);
  EXPECT_EQ(r.dp.depth(1), 1u);
  EXPECT_EQ(r.dp.depth(2), kInfDepth);
  EXPECT_EQ(r.dp.depth(3), kInfDepth);
  EXPECT_FALSE(r.dp.visited(2));
  EXPECT_EQ(r.dp.parent(2), kInvalidVertex);
  EXPECT_EQ(r.vertices_visited, 2u);
}

TEST(ReferenceBfs, StarDepthOne) {
  const CsrGraph g = star_graph(10);
  const BfsResult r = reference_bfs(g, 0);
  EXPECT_EQ(r.depth_reached, 1u);
  for (vid_t v = 1; v <= 10; ++v) {
    EXPECT_EQ(r.dp.depth(v), 1u);
    EXPECT_EQ(r.dp.parent(v), 0u);
  }
}

TEST(DegreeStats, Basics) {
  const CsrGraph g = build_csr({{0, 1}, {0, 2}, {0, 3}}, 5);
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.max_degree, 3u);
  EXPECT_EQ(s.min_degree, 0u);
  EXPECT_EQ(s.isolated_vertices, 1u);  // vertex 4
  EXPECT_DOUBLE_EQ(s.avg_degree, 6.0 / 5.0);
}

TEST(Probes, DepthAndReachability) {
  const CsrGraph g = path_graph(9);
  EXPECT_EQ(bfs_depth_from(g, 0), 8u);
  EXPECT_EQ(bfs_depth_from(g, 4), 4u);
  EXPECT_GE(probe_depth(g, 4, 1), 4u);
  EXPECT_EQ(reachable_count(g, 0), 9u);
}

TEST(Probes, PickNonisolatedRoot) {
  const CsrGraph g = build_csr({{3, 4}}, 10);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const vid_t r = pick_nonisolated_root(g, seed);
    EXPECT_TRUE(r == 3 || r == 4);
  }
  const CsrGraph empty = build_csr({}, 4);
  EXPECT_EQ(pick_nonisolated_root(empty, 1), kInvalidVertex);
}

TEST(Validator, AcceptsReferenceResult) {
  const CsrGraph g = star_graph(6);
  const BfsResult r = reference_bfs(g, 0);
  EXPECT_TRUE(validate_bfs_tree(g, r).ok);
  EXPECT_TRUE(validate_depths_match(g, r).ok);
}

TEST(Validator, CatchesBadRoot) {
  const CsrGraph g = path_graph(3);
  BfsResult r = reference_bfs(g, 0);
  r.dp.store(0, 1, 0);  // root depth corrupted
  const auto rep = validate_bfs_tree(g, r);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("root"), std::string::npos);
}

TEST(Validator, CatchesWrongParentDepth) {
  const CsrGraph g = path_graph(4);
  BfsResult r = reference_bfs(g, 0);
  r.dp.store(3, 3, 0);  // parent 0 has depth 0, not 2
  EXPECT_FALSE(validate_bfs_tree(g, r).ok);
}

TEST(Validator, CatchesNonEdgeParent) {
  const CsrGraph g = path_graph(4);
  BfsResult r = reference_bfs(g, 0);
  r.dp.store(3, 1, 0);  // (0,3) is not an edge
  EXPECT_FALSE(validate_bfs_tree(g, r).ok);
}

TEST(Validator, CatchesSkippedVertex) {
  const CsrGraph g = path_graph(3);
  // Vertex 2 left unvisited although its neighbor 1 was visited.
  BfsResult broken;
  broken.root = 0;
  broken.dp = DepthParent(3);
  broken.dp.store(0, 0, 0);
  broken.dp.store(1, 1, 0);
  const auto rep = validate_bfs_tree(g, broken);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("unvisited neighbor"), std::string::npos);
}

TEST(Validator, CatchesDepthJumpAcrossEdge) {
  // Triangle: all depths must be within 1 across every edge.
  const CsrGraph g = build_csr({{0, 1}, {1, 2}, {0, 2}}, 3);
  BfsResult r;
  r.root = 0;
  r.dp = DepthParent(3);
  r.dp.store(0, 0, 0);
  r.dp.store(1, 1, 0);
  r.dp.store(2, 3, 1);  // depth 3 adjacent to depth 0 — and wrong vs parent
  EXPECT_FALSE(validate_bfs_tree(g, r).ok);
}

TEST(Validator, CatchesDepthMismatchVsReference) {
  const CsrGraph g = build_csr({{0, 1}, {1, 2}, {0, 2}}, 3);
  BfsResult r = reference_bfs(g, 0);
  // A *valid-looking* tree with a suboptimal depth: vertex 2 via 1.
  r.dp.store(2, 2, 1);
  EXPECT_FALSE(validate_depths_match(g, r).ok);
}

TEST(Validator, SizeMismatchRejected) {
  const CsrGraph g = path_graph(3);
  BfsResult r;
  r.root = 0;
  r.dp = DepthParent(2);
  EXPECT_FALSE(validate_bfs_tree(g, r).ok);
}

TEST(DepthParent, PackingRoundTrip) {
  EXPECT_EQ(DepthParent::depth_of(DepthParent::pack(7, 12345)), 7u);
  EXPECT_EQ(DepthParent::parent_of(DepthParent::pack(7, 12345)), 12345u);
  DepthParent dp(4);
  EXPECT_FALSE(dp.visited(0));
  dp.store(2, 9, 1);
  EXPECT_TRUE(dp.visited(2));
  EXPECT_EQ(dp.depth(2), 9u);
  EXPECT_EQ(dp.parent(2), 1u);
  dp.reset();
  EXPECT_FALSE(dp.visited(2));
}

}  // namespace
}  // namespace fastbfs
