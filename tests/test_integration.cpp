// Cross-module integration: larger graphs, the Table II proxies, the
// traffic audit against the analytical model, and engine-vs-baseline
// agreement at scale.
#include <gtest/gtest.h>

#include "baseline/parallel_atomic_bfs.h"
#include "core/api.h"
#include "gen/proxies.h"
#include "gen/rmat.h"
#include "gen/uniform.h"
#include "graph/stats.h"
#include "graph/validate.h"
#include "model/model.h"

namespace fastbfs {
namespace {

TEST(Integration, MediumRmatAllEnginesAgree) {
  const CsrGraph g = rmat_graph(14, 16, 201);  // 16K vertices, 512K arcs
  BfsRunner runner(g);
  const vid_t root = pick_nonisolated_root(g, 1);
  const BfsResult ours = runner.run(root);
  const BfsResult atomic = baseline::parallel_atomic_bfs(g, root, 4);
  const BfsResult ref = reference_bfs(g, root);
  for (vid_t v = 0; v < g.n_vertices(); v += 7) {
    ASSERT_EQ(ours.dp.depth(v), ref.dp.depth(v)) << v;
    ASSERT_EQ(atomic.dp.depth(v), ref.dp.depth(v)) << v;
  }
  EXPECT_TRUE(validate_bfs_tree(g, ours).ok);
  // The paper traverses >98% of edges; on the giant component of an RMAT
  // graph we should too (duplicate isolated vertices aside).
  EXPECT_GT(static_cast<double>(ours.vertices_visited),
            0.4 * g.n_vertices());
}

TEST(Integration, TableTwoProxiesTraverseCorrectly) {
  for (const std::size_t row : {0ul, 4ul, 6ul}) {  // mesh, road, social
    const ProxySpec& spec = table2_specs()[row];
    const CsrGraph g = make_proxy(spec, /*scale_div=*/512, 17);
    BfsRunner runner(g);
    const BfsResult r = runner.run(0);
    const auto rep = validate_depths_match(g, r);
    ASSERT_TRUE(rep.ok) << spec.name << ": " << rep.error;
    if (spec.recipe == ProxyRecipe::kLayered) {
      EXPECT_EQ(r.depth_reached, spec.paper_depth) << spec.name;
    }
  }
}

TEST(Integration, TrafficAuditTracksModelShape) {
  // The byte audit and the analytical model count different things
  // (touched bytes vs cache-line transfers), but both must scale with
  // |E'| and phase-1 must dominate phase-2's stream reads for marker
  // encoding on a low-bin configuration.
  const CsrGraph g = uniform_graph(1u << 14, 8, 301);
  BfsOptions opts;
  opts.n_threads = 4;
  opts.n_sockets = 2;
  BfsRunner runner(g, opts);
  const BfsResult r = runner.run(pick_nonisolated_root(g, 1));
  const RunStats& s = runner.last_run_stats();

  const std::uint64_t p1 =
      s.traffic.phase1.local_bytes + s.traffic.phase1.remote_bytes;
  // Phase-I touches at least 4 bytes per traversed edge (the neighbour
  // ids) plus per-vertex overheads.
  EXPECT_GT(p1, 4 * r.edges_traversed);
  // Uniform graphs spread adjacency evenly: alpha_adj near 1/N_S.
  EXPECT_NEAR(s.alpha_adj, 0.5, 0.05);

  // Model sanity on the same run.
  model::ModelInput in;
  in.n_vertices = g.n_vertices();
  in.v_assigned = r.vertices_visited;
  in.e_traversed = r.edges_traversed;
  in.depth = r.depth_reached;
  in.n_pbv = 2;
  in.n_vis = 1;
  in.vis_bytes = static_cast<double>(g.n_vertices()) / 8.0;
  const auto pred = model::predict_traffic(in, model::nehalem_ep());
  EXPECT_GT(pred.phase1_ddr, 12.0);  // >= the 12 B/edge floor of IV.1a
  EXPECT_GT(pred.phase2_ddr, 4.0);
}

TEST(Integration, HighDiameterGraphManySteps) {
  // Road-like proxy: thousands of BFS steps exercise the per-step
  // control path (barriers, swaps, stats) heavily.
  const CsrGraph g = layered_graph(20000, 500, 1.3, 401);
  BfsRunner runner(g);
  const BfsResult r = runner.run(0);
  EXPECT_EQ(r.depth_reached, 500u);
  EXPECT_TRUE(validate_depths_match(g, r).ok);
  EXPECT_EQ(runner.last_run_stats().steps.size(), 501u);
}

TEST(Integration, PartitionedVisOnMediumGraphWithTinyLlc) {
  // Force the full N_VIS > 1 partitioned path at integration scale.
  const CsrGraph g = rmat_graph(13, 8, 501);
  BfsOptions opts;
  opts.n_threads = 4;
  opts.n_sockets = 2;
  opts.vis_mode = VisMode::kPartitionedBit;
  opts.llc_bytes_override = 256;  // |VIS|=1KB -> 8 partitions
  BfsRunner runner(g, opts);
  const vid_t root = pick_nonisolated_root(g, 2);
  const BfsResult r = runner.run(root);
  EXPECT_TRUE(validate_depths_match(g, r).ok);
  EXPECT_TRUE(validate_bfs_tree(g, r).ok);
}

}  // namespace
}  // namespace fastbfs
