// Tests for the public BfsRunner facade.
#include <gtest/gtest.h>

#include "core/api.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "graph/validate.h"

namespace fastbfs {
namespace {

TEST(BfsRunner, DefaultsJustWork) {
  const CsrGraph g = rmat_graph(10, 8, 55);
  BfsRunner runner(g);
  const vid_t root = pick_nonisolated_root(g, 1);
  const BfsResult r = runner.run(root);
  EXPECT_TRUE(validate_depths_match(g, r).ok);
  EXPECT_EQ(runner.options().n_sockets, 2u);
  EXPECT_EQ(runner.adjacency().n_vertices(), g.n_vertices());
}

TEST(BfsRunner, Graph500StyleManyRoots) {
  const CsrGraph g = rmat_graph(10, 8, 56);
  BfsRunner runner(g);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const vid_t root = pick_nonisolated_root(g, seed);
    const BfsResult r = runner.run(root);
    const auto rep = validate_bfs_tree(g, r);
    ASSERT_TRUE(rep.ok) << "root " << root << ": " << rep.error;
  }
}

TEST(BfsRunner, StatsAvailableAfterRun) {
  const CsrGraph g = rmat_graph(9, 8, 57);
  BfsRunner runner(g);
  runner.run(pick_nonisolated_root(g, 2));
  EXPECT_GT(runner.last_run_stats().traffic.total_bytes(), 0u);
  EXPECT_FALSE(runner.last_run_stats().steps.empty());
}

TEST(BfsRunner, HonoursCustomOptions) {
  const CsrGraph g = rmat_graph(9, 8, 58);
  BfsOptions opts;
  opts.n_threads = 2;
  opts.n_sockets = 1;
  opts.vis_mode = VisMode::kByte;
  opts.rearrange = false;
  BfsRunner runner(g, opts);
  const BfsResult r = runner.run(pick_nonisolated_root(g, 3));
  EXPECT_TRUE(validate_depths_match(g, r).ok);
  EXPECT_EQ(runner.options().vis_mode, VisMode::kByte);
}

}  // namespace
}  // namespace fastbfs
