// Unit and property tests for the load-balanced, locality-aware work
// division (Sec. III-B3a): coverage, balance, and the "at most two partial
// bins per socket" guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/divide.h"
#include "util/rng.h"

namespace fastbfs {
namespace {

using Counts = std::vector<std::uint32_t>;

/// Checks that the plan's slices cover each (src, bin) item range exactly
/// once, with no overlap and no gap.
void expect_exact_cover(const DivisionPlan& plan, const Counts& counts,
                        unsigned n_src, unsigned n_bins) {
  std::map<std::pair<unsigned, unsigned>, std::vector<std::pair<int, int>>>
      ranges;
  for (const auto& slices : plan.per_thread) {
    for (const BinSlice& s : slices) {
      ASSERT_LE(s.begin, s.end);
      ASSERT_LE(s.end, counts[static_cast<std::size_t>(s.src) * n_bins + s.bin]);
      ranges[{s.src, s.bin}].push_back({static_cast<int>(s.begin),
                                        static_cast<int>(s.end)});
    }
  }
  for (unsigned src = 0; src < n_src; ++src) {
    for (unsigned b = 0; b < n_bins; ++b) {
      const std::uint32_t c = counts[static_cast<std::size_t>(src) * n_bins + b];
      auto it = ranges.find({src, b});
      std::vector<std::pair<int, int>> rs =
          it == ranges.end() ? std::vector<std::pair<int, int>>{} : it->second;
      std::sort(rs.begin(), rs.end());
      int cursor = 0;
      for (const auto& [lo, hi] : rs) {
        ASSERT_EQ(lo, cursor) << "gap/overlap at src " << src << " bin " << b;
        cursor = hi;
      }
      ASSERT_EQ(cursor, static_cast<int>(c))
          << "uncovered items at src " << src << " bin " << b;
    }
  }
}

Counts random_counts(unsigned n_src, unsigned n_bins, std::uint64_t seed,
                     std::uint32_t max_count) {
  Xoshiro256 rng(seed);
  Counts c(static_cast<std::size_t>(n_src) * n_bins);
  for (auto& x : c) x = static_cast<std::uint32_t>(rng.next_below(max_count));
  return c;
}

TEST(Divide, EmptyInputYieldsEmptyPlan) {
  SocketTopology topo(2, 4);
  const Counts counts(4 * 4, 0);
  const auto plan =
      divide_bins(counts, 4, 4, topo, SocketScheme::kLoadBalanced);
  EXPECT_EQ(plan.total_items, 0u);
  for (const auto& s : plan.per_thread) EXPECT_TRUE(s.empty());
}

TEST(Divide, ShapeMismatchThrows) {
  SocketTopology topo(1, 1);
  EXPECT_THROW(divide_bins(Counts(3, 0), 2, 2, topo,
                           SocketScheme::kLoadBalanced),
               std::invalid_argument);
}

TEST(Divide, SocketAwareAssignsBinsToOwners) {
  SocketTopology topo(2, 2);
  // 1 src, 4 bins: bins 0,1 -> socket 0; bins 2,3 -> socket 1.
  const Counts counts = {10, 20, 30, 40};
  const auto plan =
      divide_bins(counts, 1, 4, topo, SocketScheme::kSocketAware);
  for (unsigned w = 0; w < 2; ++w) {
    for (const BinSlice& s : plan.per_thread[w]) {
      EXPECT_EQ(s.bin / 2, topo.socket_of_thread(w));
    }
  }
  EXPECT_EQ(plan.per_socket_items[0], 30u);
  EXPECT_EQ(plan.per_socket_items[1], 70u);
  expect_exact_cover(plan, counts, 1, 4);
}

TEST(Divide, SocketAwareRequiresDivisibleBins) {
  SocketTopology topo(2, 2);
  EXPECT_THROW(divide_bins(Counts(3, 1), 1, 3, topo,
                           SocketScheme::kSocketAware),
               std::invalid_argument);
}

TEST(Divide, LoadBalancedEvensOutSkew) {
  SocketTopology topo(2, 2);
  // All mass in socket 0's bins: socket-aware would idle socket 1.
  const Counts counts = {100, 100, 0, 0};
  const auto aware =
      divide_bins(counts, 1, 4, topo, SocketScheme::kSocketAware);
  EXPECT_EQ(aware.per_socket_items[1], 0u);
  EXPECT_DOUBLE_EQ(aware.socket_imbalance(), 2.0);

  const auto balanced =
      divide_bins(counts, 1, 4, topo, SocketScheme::kLoadBalanced);
  EXPECT_EQ(balanced.per_socket_items[0], 100u);
  EXPECT_EQ(balanced.per_socket_items[1], 100u);
  EXPECT_DOUBLE_EQ(balanced.socket_imbalance(), 1.0);
  expect_exact_cover(balanced, counts, 1, 4);
}

TEST(Divide, NoneSchemeIgnoresSockets) {
  SocketTopology topo(2, 4);
  const Counts counts = {100};  // 1 src, 1 bin
  const auto plan = divide_bins(counts, 1, 1, topo, SocketScheme::kNone);
  expect_exact_cover(plan, counts, 1, 1);
  // All four threads get exactly 25 items.
  for (const auto& slices : plan.per_thread) {
    std::uint64_t items = 0;
    for (const auto& s : slices) items += s.size();
    EXPECT_EQ(items, 25u);
  }
}

struct DivideCase {
  unsigned sockets, threads, srcs, bins;
  std::uint64_t seed;
  SocketScheme scheme;
};

class DivideProperty : public ::testing::TestWithParam<DivideCase> {};

TEST_P(DivideProperty, CoversExactlyAndBalances) {
  const auto c = GetParam();
  SocketTopology topo(c.sockets, c.threads);
  const Counts counts = random_counts(c.srcs, c.bins, c.seed, 50);
  const auto plan = divide_bins(counts, c.srcs, c.bins, topo, c.scheme);
  expect_exact_cover(plan, counts, c.srcs, c.bins);

  std::uint64_t total = 0;
  for (const auto x : counts) total += x;
  EXPECT_EQ(plan.total_items, total);

  if (c.scheme == SocketScheme::kLoadBalanced && total > 0) {
    // Socket shares differ from the even share by less than one item of
    // rounding (the cuts are at exact positions s*T/N_S).
    for (unsigned s = 0; s < c.sockets; ++s) {
      const std::uint64_t lo = total * s / c.sockets;
      const std::uint64_t hi = total * (s + 1) / c.sockets;
      EXPECT_EQ(plan.per_socket_items[s], hi - lo);
    }
    // At most two partial bins per socket (DESIGN invariant 5): count
    // bins whose items are split across sockets.
    std::vector<std::map<unsigned, std::uint64_t>> bin_by_socket(c.bins);
    for (unsigned w = 0; w < c.threads; ++w) {
      for (const BinSlice& s : plan.per_thread[w]) {
        bin_by_socket[s.bin][topo.socket_of_thread(w)] += s.size();
      }
    }
    std::map<unsigned, int> partial_bins_of_socket;
    for (unsigned b = 0; b < c.bins; ++b) {
      if (bin_by_socket[b].size() > 1) {
        for (const auto& [sock, cnt] : bin_by_socket[b]) {
          (void)cnt;
          ++partial_bins_of_socket[sock];
        }
      }
    }
    for (const auto& [sock, n_partial] : partial_bins_of_socket) {
      EXPECT_LE(n_partial, 2) << "socket " << sock;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DivideProperty,
    ::testing::Values(
        DivideCase{1, 1, 1, 1, 1, SocketScheme::kLoadBalanced},
        DivideCase{2, 4, 4, 4, 2, SocketScheme::kLoadBalanced},
        DivideCase{2, 4, 4, 8, 3, SocketScheme::kLoadBalanced},
        DivideCase{4, 8, 8, 16, 4, SocketScheme::kLoadBalanced},
        DivideCase{3, 6, 6, 9, 5, SocketScheme::kLoadBalanced},
        DivideCase{2, 4, 4, 4, 6, SocketScheme::kSocketAware},
        DivideCase{4, 4, 4, 8, 7, SocketScheme::kSocketAware},
        DivideCase{2, 5, 5, 1, 8, SocketScheme::kNone},
        DivideCase{2, 4, 4, 6, 9, SocketScheme::kNone},
        DivideCase{2, 8, 8, 32, 10, SocketScheme::kLoadBalanced}));

/// Per-socket accounting invariant shared by all schemes: the items a
/// socket's threads receive sum exactly to per_socket_items, and sockets
/// together receive total_items.
void expect_socket_sums(const DivisionPlan& plan, const SocketTopology& topo) {
  std::vector<std::uint64_t> by_socket(topo.n_sockets(), 0);
  for (unsigned w = 0; w < topo.n_threads(); ++w) {
    for (const BinSlice& s : plan.per_thread[w]) {
      by_socket[topo.socket_of_thread(w)] += s.size();
    }
  }
  std::uint64_t total = 0;
  for (unsigned s = 0; s < topo.n_sockets(); ++s) {
    EXPECT_EQ(by_socket[s], plan.per_socket_items[s]) << "socket " << s;
    total += by_socket[s];
  }
  EXPECT_EQ(total, plan.total_items);
}

void expect_plans_equal(const DivisionPlan& a, const DivisionPlan& b) {
  EXPECT_EQ(a.total_items, b.total_items);
  EXPECT_EQ(a.per_socket_items, b.per_socket_items);
  ASSERT_EQ(a.per_thread.size(), b.per_thread.size());
  for (std::size_t w = 0; w < a.per_thread.size(); ++w) {
    EXPECT_EQ(a.per_thread[w], b.per_thread[w]) << "thread " << w;
  }
}

/// Randomized sweep over topologies, shapes and all three SocketSchemes —
/// the guard for the tentpole's plan-sharing refactor: exact single
/// coverage of every (src, bin) item, per-socket sums, and the reuse API
/// (divide_bins_into on a recycled plan) bit-identical to a fresh plan.
TEST(DivideFuzz, AllSchemesCoverExactlyAndReuseMatchesFresh) {
  Xoshiro256 rng(20260806);
  DivisionPlan reused;  // deliberately recycled across every iteration
  constexpr SocketScheme kSchemes[] = {
      SocketScheme::kNone, SocketScheme::kSocketAware,
      SocketScheme::kLoadBalanced};
  for (int iter = 0; iter < 300; ++iter) {
    const unsigned sockets = 1 + static_cast<unsigned>(rng.next_below(4));
    const unsigned threads =
        sockets + static_cast<unsigned>(rng.next_below(8));
    const SocketScheme scheme = kSchemes[rng.next_below(3)];
    unsigned bins = 1 + static_cast<unsigned>(rng.next_below(24));
    if (scheme == SocketScheme::kSocketAware) {
      bins = sockets * (1 + static_cast<unsigned>(rng.next_below(6)));
    }
    const unsigned srcs = 1 + static_cast<unsigned>(rng.next_below(8));
    SocketTopology topo(sockets, threads);
    // Mix dense, sparse and empty count matrices (empty rows/bins are the
    // common small-frontier steady state the engine replans every step).
    const std::uint32_t max_count =
        1 + static_cast<std::uint32_t>(rng.next_below(100));
    Counts counts(static_cast<std::size_t>(srcs) * bins, 0);
    for (auto& c : counts) {
      if (rng.next_below(4) != 0) {
        c = static_cast<std::uint32_t>(rng.next_below(max_count));
      }
    }

    const auto fresh = divide_bins(counts, srcs, bins, topo, scheme);
    expect_exact_cover(fresh, counts, srcs, bins);
    expect_socket_sums(fresh, topo);

    if (scheme == SocketScheme::kSocketAware) {
      const unsigned bins_per_socket = bins / sockets;
      for (unsigned w = 0; w < threads; ++w) {
        for (const BinSlice& s : fresh.per_thread[w]) {
          EXPECT_EQ(s.bin / bins_per_socket, topo.socket_of_thread(w));
        }
      }
    }

    divide_bins_into(counts, srcs, bins, topo, scheme, reused);
    expect_plans_equal(reused, fresh);
  }
}

TEST(Divide, ReusedPlanShrinksAndGrowsAcrossShapes) {
  // A plan recycled across different topologies must not leak stale
  // threads, sockets or slices from a previous (larger) shape.
  DivisionPlan plan;
  SocketTopology big(4, 8);
  divide_bins_into(random_counts(8, 16, 11, 50), 8, 16, big,
                   SocketScheme::kLoadBalanced, plan);
  EXPECT_EQ(plan.per_thread.size(), 8u);

  SocketTopology small(1, 2);
  const Counts counts = random_counts(2, 4, 12, 50);
  divide_bins_into(counts, 2, 4, small, SocketScheme::kLoadBalanced, plan);
  EXPECT_EQ(plan.per_thread.size(), 2u);
  EXPECT_EQ(plan.per_socket_items.size(), 1u);
  expect_exact_cover(plan, counts, 2, 4);
  expect_plans_equal(
      plan, divide_bins(counts, 2, 4, small, SocketScheme::kLoadBalanced));
}

TEST(Divide, InvocationCounterAdvances) {
  SocketTopology topo(1, 1);
  const Counts counts = {5};
  const auto before = divide_bins_invocations();
  (void)divide_bins(counts, 1, 1, topo, SocketScheme::kNone);
  DivisionPlan p;
  divide_bins_into(counts, 1, 1, topo, SocketScheme::kNone, p);
  EXPECT_EQ(divide_bins_invocations() - before, 2u);
}

TEST(Divide, SlicesArriveInBinMajorOrder) {
  SocketTopology topo(2, 2);
  const Counts counts = random_counts(2, 8, 77, 20);
  const auto plan =
      divide_bins(counts, 2, 8, topo, SocketScheme::kLoadBalanced);
  for (const auto& slices : plan.per_thread) {
    for (std::size_t i = 1; i < slices.size(); ++i) {
      EXPECT_GE(slices[i].bin, slices[i - 1].bin);
    }
  }
}

}  // namespace
}  // namespace fastbfs
