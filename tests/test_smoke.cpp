// End-to-end smoke: the full engine on a small R-MAT graph agrees with the
// reference BFS and produces a valid BFS tree.
#include <gtest/gtest.h>

#include "core/api.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "graph/validate.h"

namespace fastbfs {
namespace {

TEST(Smoke, TwoPhaseMatchesReferenceOnRmat) {
  const CsrGraph g = rmat_graph(/*scale=*/12, /*edge_factor=*/8, /*seed=*/7);
  BfsOptions opts;
  opts.n_threads = 4;
  opts.n_sockets = 2;
  BfsRunner runner(g, opts);
  const vid_t root = pick_nonisolated_root(g, 1);
  ASSERT_NE(root, kInvalidVertex);
  const BfsResult r = runner.run(root);

  const auto tree = validate_bfs_tree(g, r);
  EXPECT_TRUE(tree.ok) << tree.error;
  const auto depths = validate_depths_match(g, r);
  EXPECT_TRUE(depths.ok) << depths.error;
  EXPECT_GT(r.vertices_visited, 0u);
  EXPECT_GT(r.edges_traversed, 0u);
}

}  // namespace
}  // namespace fastbfs
