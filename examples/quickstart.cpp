// Quickstart: generate a graph, run the optimized BFS, inspect the result.
//
//   ./quickstart [--scale=18] [--threads=4] [--sockets=2]
//
// Walks through the three steps every user of the library takes:
//   1. get a CsrGraph (generated here; graph/io.h loads files),
//   2. construct a BfsRunner (NUMA-partitions the graph, builds the
//      engine),
//   3. run() from a root and read depths/parents out of the result.
#include <cstdio>

#include "core/api.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "graph/validate.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  const CliArgs args(argc, argv);
  const unsigned scale = static_cast<unsigned>(args.get_int("scale", 18));
  const unsigned edge_factor =
      static_cast<unsigned>(args.get_int("edge-factor", 16));

  // 1. A Graph500-style R-MAT graph: 2^scale vertices, edge_factor edges
  //    per vertex, symmetrized.
  std::printf("generating R-MAT graph: scale=%u edge_factor=%u ...\n", scale,
              edge_factor);
  const CsrGraph g = rmat_graph(scale, edge_factor, /*seed=*/12345);
  std::printf("graph: %u vertices, %llu directed arcs (avg degree %.1f)\n",
              g.n_vertices(),
              static_cast<unsigned long long>(g.n_edges()),
              g.average_degree());

  // 2. The runner owns the socket-partitioned adjacency array and the
  //    two-phase engine. Defaults: 4 threads on 2 logical sockets,
  //    partitioned atomic-free VIS, load-balanced division.
  BfsOptions opts;
  opts.n_threads = static_cast<unsigned>(args.get_int("threads", 4));
  opts.n_sockets = static_cast<unsigned>(args.get_int("sockets", 2));
  BfsRunner runner(g, opts);

  // 3. Traverse from a non-isolated root.
  const vid_t root = pick_nonisolated_root(g, /*seed=*/1);
  const BfsResult r = runner.run(root);
  std::printf(
      "BFS from %u: visited %llu vertices, traversed %llu edges in %.3f s "
      "(%.1f MTEPS), depth %u\n",
      root, static_cast<unsigned long long>(r.vertices_visited),
      static_cast<unsigned long long>(r.edges_traversed), r.seconds,
      mteps(r.edges_traversed, r.seconds), r.depth_reached);

  // Read individual results: depth and BFS-tree parent of any vertex.
  for (vid_t v = root; v < root + 5 && v < g.n_vertices(); ++v) {
    if (r.dp.visited(v)) {
      std::printf("  vertex %u: depth %u, parent %u\n", v, r.dp.depth(v),
                  r.dp.parent(v));
    } else {
      std::printf("  vertex %u: unreachable\n", v);
    }
  }

  // Sanity: every result is a valid BFS tree (the library's tests enforce
  // this on every engine; shown here as API demonstration).
  const auto report = validate_bfs_tree(g, r);
  std::printf("validation: %s\n", report.ok ? "OK" : report.error.c_str());
  return report.ok ? 0 : 1;
}
