// Graph500-style benchmark driver (the paper's headline context).
//
//   ./graph500_runner [--scale=18] [--edge-factor=16] [--roots=16]
//
// Follows the Graph500 BFS (kernel 2) procedure the paper benchmarks
// against: generate a Kronecker/R-MAT graph with the official parameters
// (a=0.57, b=c=0.19, d=0.05, edge factor 16), sample search keys with
// non-zero degree, run one BFS per key, *validate every run*, and report
// the TEPS statistics (min/mean/max + harmonic mean) in the halved-edge
// convention the paper uses for its Toy++ comparison.
#include <cstdio>
#include <vector>

#include "core/api.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "graph/validate.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  const CliArgs args(argc, argv);
  const unsigned scale = static_cast<unsigned>(args.get_int("scale", 18));
  const unsigned edge_factor =
      static_cast<unsigned>(args.get_int("edge-factor", 16));
  const unsigned n_roots = static_cast<unsigned>(args.get_int("roots", 16));

  std::printf("graph500: scale=%u edgefactor=%u (Toy is scale 26; the "
              "paper's Toy++ is scale 28)\n",
              scale, edge_factor);
  Timer construction;
  const CsrGraph g = rmat_graph(scale, edge_factor, /*seed=*/2);
  BfsOptions opts;
  opts.n_threads = static_cast<unsigned>(args.get_int("threads", 4));
  opts.n_sockets = static_cast<unsigned>(args.get_int("sockets", 2));
  BfsRunner runner(g, opts);
  std::printf("construction (generate + CSR + NUMA layout): %.2f s\n",
              construction.seconds());

  // The library's batch API performs the whole kernel-2 procedure:
  // sampled keys, one traversal each, per-run validation, TEPS stats.
  const BatchResult batch =
      runner.run_batch(g, n_roots, /*seed=*/100, /*validate=*/true);
  if (batch.validated != batch.runs) {
    std::printf("VALIDATION FAILED: %u/%u runs valid\n", batch.validated,
                batch.runs);
    return 1;
  }

  std::printf("\nvalidated BFS runs: %u/%u\n", batch.validated, batch.runs);
  std::printf("TEPS (Graph500 halved-edge convention):\n");
  std::printf("  min       %.3e\n", batch.min_teps);
  std::printf("  mean      %.3e\n", batch.mean_teps);
  std::printf("  harmonic  %.3e   <- the Graph500 reported statistic\n",
              batch.harmonic_teps);
  std::printf("  max       %.3e\n", batch.max_teps);
  std::printf(
      "\npaper context: ~1 GTEPS (unhalved) on RMAT 64M/2G edges on a "
      "dual-socket\nNehalem; its Toy++ number matched a 256-node cluster "
      "from the Nov 2010 list.\n");
  return 0;
}
