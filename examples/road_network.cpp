// Road-network routing: minimum-hop paths on a high-diameter graph.
//
//   ./road_network [--width=600] [--height=400] [--file=path.gr]
//
// The opposite regime from social graphs (Table II's USA road networks:
// degree ~2.4, diameter in the thousands): thousands of tiny BFS levels
// stress the per-step overheads rather than bandwidth. This example
// routes between random intersections on a damaged grid (or a real DIMACS
// .gr file passed with --file), and reconstructs the hop-optimal path
// from the parent array — the reachability building block the
// introduction cites for ground transportation.
#include <cstdio>
#include <vector>

#include "core/api.h"
#include "gen/grid.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  const CliArgs args(argc, argv);

  CsrGraph g;
  if (args.has("file")) {
    const std::string path = args.get("file");
    std::printf("loading DIMACS road network from %s ...\n", path.c_str());
    const DimacsGraph d = read_dimacs_file(path);
    BuildOptions opt;
    opt.symmetrize = false;  // DIMACS .gr lists both arc directions
    g = build_csr(d.edges, d.n_vertices, opt);
  } else {
    const vid_t width = static_cast<vid_t>(args.get_int("width", 600));
    const vid_t height = static_cast<vid_t>(args.get_int("height", 400));
    std::printf("generating %ux%u road grid (8%% closures)...\n", width,
                height);
    g = grid_graph(width, height, /*keep_prob=*/0.92, /*seed=*/31);
  }
  std::printf("intersections: %u; road segments (arcs/2): %llu; "
              "avg degree %.2f\n",
              g.n_vertices(),
              static_cast<unsigned long long>(g.n_edges() / 2),
              g.average_degree());

  // High-diameter graphs spend their time in step overheads; the engine
  // handles thousands of levels (USA-All: 6230) without special-casing.
  BfsRunner runner(g);
  Xoshiro256 rng(args.get_int("seed", 4));
  const unsigned queries = static_cast<unsigned>(args.get_int("queries", 4));

  for (unsigned q = 0; q < queries; ++q) {
    const vid_t src = pick_nonisolated_root(g, rng.next());
    const vid_t dst = pick_nonisolated_root(g, rng.next());
    const BfsResult r = runner.run(src);
    std::printf("\nroute %u -> %u: ", src, dst);
    if (!r.dp.visited(dst)) {
      std::printf("unreachable (closed roads cut the network)\n");
      continue;
    }
    // Walk the BFS tree back from the destination.
    std::vector<vid_t> path;
    for (vid_t v = dst; v != src; v = r.dp.parent(v)) path.push_back(v);
    path.push_back(src);
    std::printf("%u hops (graph depth from source: %u), %.1f MTEPS\n",
                r.dp.depth(dst), r.depth_reached,
                mteps(r.edges_traversed, r.seconds));
    std::printf("  path tail: ");
    const std::size_t show = std::min<std::size_t>(path.size(), 6);
    for (std::size_t i = 0; i < show; ++i) {
      std::printf("%u%s", path[path.size() - 1 - i],
                  i + 1 < show ? " -> " : "");
    }
    std::printf("%s\n", path.size() > show ? " -> ..." : "");
  }
  return 0;
}
