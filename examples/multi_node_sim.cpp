// Multi-node simulation: why an efficient single node matters.
//
//   ./multi_node_sim [--scale=16] [--max-ranks=16]
//
// The paper's cost argument (Sec. I): its dual-socket node matched a
// 256-node cluster from the Nov 2010 Graph500 list, because 1-D
// distributed BFS pays one network message for almost every traversed
// edge once the cluster grows. This example quantifies that trade-off on
// a Graph500-class R-MAT graph: sweep the simulated node count, measure
// cross-node messages per traversed edge, and compare against the
// traversal running entirely inside one (multi-socket) node with the
// paper's engine — where the same traffic moves at cache/DRAM speed.
#include <cstdio>

#include "core/api.h"
#include "dist/cluster.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  const CliArgs args(argc, argv);
  const unsigned scale = static_cast<unsigned>(args.get_int("scale", 16));
  const unsigned max_ranks =
      static_cast<unsigned>(args.get_int("max-ranks", 16));

  const CsrGraph g = rmat_graph(scale, 16, /*seed=*/5);
  const vid_t root = pick_nonisolated_root(g, 1);
  std::printf("R-MAT scale %u: %u vertices, %llu arcs\n\n", scale,
              g.n_vertices(), static_cast<unsigned long long>(g.n_edges()));

  // Single-node reference: the paper's engine, all traffic on-node.
  BfsRunner runner(g);
  const BfsResult single = runner.run(root);
  std::printf(
      "single node (two-phase engine): %.1f MTEPS, 0 network bytes\n\n",
      mteps(single.edges_traversed, single.seconds));

  std::printf("%-8s %-14s %-16s %-18s %s\n", "nodes", "messages",
              "msgs/edge", "wire bytes", "bytes per node per step");
  for (unsigned ranks = 1; ranks <= max_ranks; ranks *= 2) {
    dist::DistributedBfs cluster(g, ranks);
    const BfsResult r = cluster.run(root);
    const auto& s = cluster.last_stats();
    const double per_node_step =
        s.supersteps == 0 || ranks == 0
            ? 0.0
            : static_cast<double>(s.total_message_bytes) /
                  (static_cast<double>(ranks) * s.supersteps);
    std::printf("%-8u %-14llu %-16.3f %-18llu %.0f\n", ranks,
                static_cast<unsigned long long>(s.total_messages),
                s.messages_per_edge(r.edges_traversed),
                static_cast<unsigned long long>(s.total_message_bytes),
                per_node_step);
  }
  std::printf(
      "\nreading: messages/edge approaches 1 as nodes are added — nearly\n"
      "every traversed edge becomes wire traffic. Packing more traversal\n"
      "into each node (this library's purpose) removes that traffic\n"
      "entirely, which is how one well-driven dual-socket node kept pace\n"
      "with a 256-node cluster on the Nov 2010 Graph500 list.\n");
  return 0;
}
