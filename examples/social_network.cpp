// Social-network analysis: degrees of separation on a scale-free graph.
//
//   ./social_network [--scale=18] [--samples=8]
//
// The workload the paper's introduction motivates: reachability queries on
// a social graph (Orkut/Twitter/Facebook in Table II). This example builds
// an Orkut-class R-MAT proxy and uses repeated BFS to compute
//   - the degrees-of-separation histogram from sampled users,
//   - the effective diameter estimate (99th-percentile depth),
//   - the size of the giant component.
// Demonstrates reusing one BfsRunner across many roots (construction cost
// is paid once) and reading per-vertex depths from BfsResult.
#include <cstdio>
#include <vector>

#include "core/api.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  const CliArgs args(argc, argv);
  const unsigned scale = static_cast<unsigned>(args.get_int("scale", 18));
  const unsigned samples = static_cast<unsigned>(args.get_int("samples", 8));

  // Orkut-class: heavy edge factor (Table II: 3M users, 223M friendships).
  std::printf("building social graph (R-MAT scale %u, edge factor 36)...\n",
              scale);
  const CsrGraph g = rmat_graph(scale, 36, /*seed=*/777);
  const DegreeStats ds = degree_stats(g);
  std::printf("users: %u; friendships (arcs/2): %llu; max degree %u; "
              "isolated %llu\n",
              g.n_vertices(),
              static_cast<unsigned long long>(g.n_edges() / 2),
              ds.max_degree,
              static_cast<unsigned long long>(ds.isolated_vertices));

  BfsRunner runner(g);
  std::vector<std::uint64_t> separation_hist;
  std::uint64_t giant = 0;
  double total_seconds = 0.0;
  std::uint64_t total_edges = 0;

  for (unsigned i = 0; i < samples; ++i) {
    const vid_t root = pick_nonisolated_root(g, 1000 + i);
    const BfsResult r = runner.run(root);
    total_seconds += r.seconds;
    total_edges += r.edges_traversed;
    giant = std::max(giant, r.vertices_visited);
    if (separation_hist.size() < r.depth_reached + 1) {
      separation_hist.resize(r.depth_reached + 1, 0);
    }
    for (vid_t v = 0; v < g.n_vertices(); ++v) {
      if (r.dp.visited(v)) ++separation_hist[r.dp.depth(v)];
    }
  }

  std::printf("\ndegrees-of-separation histogram (over %u sampled users):\n",
              samples);
  std::uint64_t total_pairs = 0;
  for (const auto c : separation_hist) total_pairs += c;
  std::uint64_t cumulative = 0;
  for (std::size_t d = 0; d < separation_hist.size(); ++d) {
    cumulative += separation_hist[d];
    const double pct =
        100.0 * static_cast<double>(separation_hist[d]) /
        static_cast<double>(total_pairs);
    std::printf("  %2zu hops: %10llu reachable (%.1f%%)\n", d,
                static_cast<unsigned long long>(separation_hist[d]), pct);
    if (100.0 * static_cast<double>(cumulative) /
            static_cast<double>(total_pairs) >= 99.0) {
      std::printf("  -> effective diameter (99%%): %zu hops\n", d);
      break;
    }
  }
  std::printf("\ngiant component: %llu of %u users (%.1f%%)\n",
              static_cast<unsigned long long>(giant), g.n_vertices(),
              100.0 * static_cast<double>(giant) / g.n_vertices());
  std::printf("traversal rate: %.1f MTEPS over %u runs\n",
              mteps(total_edges, total_seconds), samples);
  return 0;
}
