// Shared harness for the per-table/figure experiment binaries.
//
// Every bench accepts the same flags:
//   --scale=small|paper   graph sizing (default small: paper sizes / 64,
//                         so the sweeps finish on a laptop-class VM)
//   --div=N               explicit size divisor (overrides --scale)
//   --threads=N --sockets=N --runs=N --seed=N
// and prints fixed-width tables with the paper's reported value beside the
// measured one. Per the paper's method (Sec. V), each configuration is
// run from several distinct non-isolated roots and averaged.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "baseline/single_phase_bfs.h"
#include "core/api.h"
#include "core/two_phase_bfs.h"
#include "graph/csr.h"
#include "model/platform_params.h"
#include "util/cli.h"
#include "util/table.h"

namespace fastbfs::bench {

struct BenchEnv {
  unsigned threads = 4;
  unsigned sockets = 2;
  unsigned runs = 2;
  std::uint64_t seed = 42;
  unsigned div = 64;  // paper graph sizes are divided by this
  std::string scale = "small";

  static BenchEnv from_cli(const CliArgs& args);

  /// Paper vertex count -> this machine's vertex count, floored at 2^14
  /// so every configuration still exercises multi-step traversals.
  vid_t scaled_vertices(std::uint64_t paper_vertices) const;

  /// Scaled LLC budget: shrinking graphs *and* the modelled LLC by the
  /// same divisor preserves the paper's |VIS|-vs-cache relationships
  /// (which VIS variant fits where), which is what Fig. 4 is about.
  std::size_t scaled_llc_bytes() const;

  BfsOptions engine_options() const;

  void print_header(const std::string& title,
                    const std::string& paper_context) const;
};

/// Averaged measurements over `env.runs` BFS runs from distinct roots.
struct Measured {
  double mteps = 0.0;          // mean across runs
  double seconds = 0.0;        // mean per-run wall time
  double edges = 0.0;          // mean traversed edges
  double phase1_frac = 0.0;    // share of phase time (two-phase only)
  double phase2_frac = 0.0;
  double rearrange_frac = 0.0;
  double alpha_adj = 0.0;      // last run (two-phase only)
  double remote_frac = 0.0;    // remote / total audited bytes
  double imbalance = 1.0;      // worst per-step phase-2 socket imbalance
  double sec_per_edge = 0.0;   // mean seconds per traversed edge
};

Measured measure_two_phase(const AdjacencyArray& adj, const BfsOptions& opts,
                           unsigned runs, std::uint64_t seed);

Measured measure_single_phase(const CsrGraph& g,
                              const baseline::SinglePhaseOptions& opts,
                              unsigned runs, std::uint64_t seed);

Measured measure_serial(const CsrGraph& g, unsigned runs, std::uint64_t seed);

/// Best-effort host core frequency in GHz (cpuinfo, fallback 2.0): used to
/// express measured seconds/edge in cycles/edge next to the model.
double host_freq_ghz();

/// STREAM-style microbenchmarks (GB/s, best of `reps`): sequential sum
/// over `bytes` of memory / sequential store / copy.
double read_bandwidth(std::size_t bytes, int reps);
double write_bandwidth(std::size_t bytes, int reps);
double copy_bandwidth(std::size_t bytes, int reps);

/// PlatformParams recalibrated to this host: core clock from cpuinfo,
/// DDR bandwidths from a DRAM-sized sweep, cache bandwidths from an
/// L2-resident sweep, QPI kept at the Nehalem value (no second socket to
/// measure). Lets the Sec. IV model predict *this* machine.
fastbfs::model::PlatformParams calibrated_host_params();

/// Minimal insertion-ordered JSON object builder for the shared bench
/// reporter: each add_* renders the value immediately, str() wraps the
/// fields in braces. Strings are escaped; add_raw splices a pre-rendered
/// JSON fragment (nested object/array) verbatim.
class JsonFields {
 public:
  JsonFields& add_str(const std::string& key, const std::string& v);
  JsonFields& add_int(const std::string& key, std::int64_t v);
  JsonFields& add_uint(const std::string& key, std::uint64_t v);
  JsonFields& add_num(const std::string& key, double v);
  JsonFields& add_bool(const std::string& key, bool v);
  JsonFields& add_raw(const std::string& key, const std::string& raw_json);
  std::string str() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The one bench JSON schema (CI parses these artifacts uniformly;
/// scripts/bench_compare.py refuses artifacts whose schema_version it
/// does not know). Bump kBenchSchemaVersion when the envelope shape —
/// not the metric set — changes.
///   {"bench": <name>, "schema_version": 1, "timestamp": <unix seconds>,
///    "config": {...}, "metrics": {...}}
/// Returns false (after printing a warning) when `path` cannot be opened —
/// benches keep running; the artifact is best-effort.
inline constexpr int kBenchSchemaVersion = 1;
bool write_bench_json(const std::string& path, const std::string& name,
                      std::int64_t timestamp, const JsonFields& config,
                      const JsonFields& metrics);

}  // namespace fastbfs::bench
