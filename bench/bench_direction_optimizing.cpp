// Direction-optimizing traversal (DESIGN.md "Direction-optimizing
// extension"; Beamer et al., SC'12, adapted to the paper's two-phase
// engine).
//
// Claim under test: on low-diameter scale-free graphs (R-MAT), the kAuto
// per-step heuristic beats the paper's pure top-down engine by >= 1.3x in
// Graph500 harmonic-mean TEPS, because the few huge middle levels run
// bottom-up and skip most frontier edges. On high-diameter graphs (grid)
// kAuto must *match* top-down — the heuristic never fires there, by
// construction of the beta guard.
//
// Two tables:
//   1. per-graph run_batch comparison of the three DirectionModes
//      (harmonic TEPS + the per-step direction log of one sample run);
//   2. alpha/beta sensitivity sweep on R-MAT.
//
// The acceptance configuration is R-MAT scale-18 ef-16: run with --div=1
// (or --scale=paper) to measure it unscaled.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "gen/grid.h"
#include "gen/rmat.h"
#include "gen/uniform.h"
#include "graph/stats.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header(
      "Direction-optimizing traversal: top-down vs bottom-up vs auto",
      "Beamer SC'12 heuristic grafted onto the two-phase engine; "
      "acceptance: auto/td >= 1.3x harmonic TEPS on RMAT-18 ef-16");

  const vid_t n = env.scaled_vertices(1u << 18);
  const unsigned scale = floor_log2(ceil_pow2(n));
  const unsigned side = 1u << (scale / 2);
  const CsrGraph rmat = rmat_graph(scale, 16, env.seed);
  const CsrGraph ur = uniform_graph(n, 16, env.seed);
  const CsrGraph grid = grid_graph(side, side, 1.0, env.seed);
  const unsigned n_roots = env.runs > 4 ? env.runs : 4;

  struct Workload {
    const char* name;
    const CsrGraph* g;
  };
  const Workload workloads[] = {
      {"RMAT ef-16", &rmat}, {"UR deg-16", &ur}, {"grid", &grid}};

  struct Mode {
    const char* name;
    DirectionMode mode;
  };
  const Mode modes[] = {{"top-down", DirectionMode::kTopDown},
                        {"bottom-up", DirectionMode::kBottomUp},
                        {"auto", DirectionMode::kAuto}};

  TextTable t({"graph", "mode", "harm MTEPS", "vs td", "valid", "sample dirs"});
  double rmat_speedup = 0.0;
  for (const Workload& w : workloads) {
    double td_teps = 0.0;
    for (const Mode& m : modes) {
      BfsOptions o = env.engine_options();
      o.direction = m.mode;
      BfsRunner runner(*w.g, o);
      const BatchResult b =
          runner.run_batch(*w.g, n_roots, env.seed, /*validate=*/true);
      // One extra run so the direction log of a representative root is
      // available (run_batch overwrites last_run_stats per root).
      runner.run(b.roots.empty() ? 0 : b.roots.front());
      const RunStats& s = runner.last_run_stats();
      if (m.mode == DirectionMode::kTopDown) td_teps = b.harmonic_teps;
      const double ratio =
          td_teps > 0.0 ? b.harmonic_teps / td_teps : 0.0;
      if (m.mode == DirectionMode::kAuto && w.g == &rmat) {
        rmat_speedup = ratio;
      }
      char valid[16];
      std::snprintf(valid, sizeof valid, "%u/%u", b.validated, b.runs);
      std::string dirs = s.direction_string();
      if (dirs.size() > 24) dirs = dirs.substr(0, 21) + "...";
      t.add_row({w.name, m.name, TextTable::num(b.harmonic_teps / 1e6, 1),
                 TextTable::num(ratio, 2), valid, dirs});
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf("\nacceptance (RMAT auto/td >= 1.3x): %.2fx  [%s]\n",
              rmat_speedup, rmat_speedup >= 1.3 ? "PASS" : "FAIL");

  // Alpha/beta sensitivity on the R-MAT workload. alpha gates TD->BU
  // (larger = later switch-down), beta gates both the all-arcs share
  // guard and BU->TD (larger = earlier switch-down, later switch-up).
  {
    const AdjacencyArray adj(rmat, env.sockets);
    TextTable sweep({"alpha", "beta", "MTEPS", "switches", "dirs"});
    for (const double alpha : {4.0, 15.0, 30.0, 60.0}) {
      for (const double beta : {4.0, 18.0, 40.0}) {
        BfsOptions o = env.engine_options();
        o.direction = DirectionMode::kAuto;
        o.alpha = alpha;
        o.beta = beta;
        o.collect_stats = true;
        const Measured m = measure_two_phase(adj, o, env.runs, env.seed);
        TwoPhaseBfs engine(adj, o);
        engine.run(pick_nonisolated_root(rmat, env.seed));
        const RunStats& s = engine.last_run_stats();
        sweep.add_row({TextTable::num(alpha, 0), TextTable::num(beta, 0),
                       TextTable::num(m.mteps, 1),
                       TextTable::num(std::uint64_t(s.direction_switches)),
                       s.direction_string()});
      }
    }
    std::printf("\nalpha/beta sweep (RMAT, one-run direction log):\n%s",
                sweep.to_string().c_str());
  }
  return 0;
}
