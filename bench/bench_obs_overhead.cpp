// Observability overhead gate (DESIGN.md §5f).
//
// Claims under test:
//   1. Compiled out (the default build), the flight-recorder hooks cost
//      nothing: FASTBFS_SPAN/FASTBFS_EVENT expand to ((void)0), so there
//      is nothing to measure — this binary verifies the claim by
//      construction (obs::trace_compiled() == false) and reports the
//      production baseline, which already includes the always-on metrics
//      registry and collect_stats.
//   2. Compiled in (-DFASTBFS_TRACE) with the recorder *armed*, warm
//      query latency on RMAT ef-16 regresses by at most 5%; with the
//      recorder disarmed (one relaxed load per hook) by at most 1%.
//
// --check turns the applicable bounds into the exit code (CI trace-smoke
// job); without it the numbers are informational. Emits
// BENCH_obs_overhead.json through the shared reporter.
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <vector>

#include "bench_common.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace {

using namespace fastbfs;

double median_seconds(std::vector<double> s) {
  std::sort(s.begin(), s.end());
  const std::size_t n = s.size();
  return n == 0 ? 0.0 : (s[(n - 1) / 2] + s[n / 2]) / 2.0;
}

/// Median warm run_into latency over `iters` runs (runner pre-warmed).
double measure_warm(BfsRunner& runner, vid_t root, unsigned iters,
                    BfsResult& out) {
  std::vector<double> s;
  s.reserve(iters);
  for (unsigned i = 0; i < iters; ++i) {
    Timer t;
    runner.run_into(root, out);
    s.push_back(t.seconds());
  }
  return median_seconds(s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  const bool check = args.get_bool("check", false);
  env.print_header(
      "Flight-recorder overhead: tracing disarmed/armed vs baseline",
      "gate: compiled-out = zero by construction; armed <= 5%, "
      "disarmed <= 1%");

  const unsigned scale =
      floor_log2(ceil_pow2(env.scaled_vertices(1u << 18)));
  const CsrGraph rmat = rmat_graph(scale, 16, env.seed);
  const vid_t root = pick_nonisolated_root(rmat, env.seed);
  const unsigned iters = std::max(env.runs * 16u, 48u);

  BfsRunner runner(rmat, env.engine_options());
  BfsResult out;
  runner.run_into(root, out);  // warm engine + buffers
  runner.run_into(root, out);

  // Interleave the A/B blocks over several rounds and keep each arm's
  // best block: a host-load spike then inflates one block of *both* arms
  // instead of deciding the ratio. The baseline is the production default
  // (metrics + collect_stats on, recorder disarmed).
  obs::TraceConfig cfg;
  cfg.ring_capacity = 1u << 14;  // no wrap churn during the measurement
  double base = 0.0, armed = 0.0;
  for (int round = 0; round < 3; ++round) {
    obs::disable();
    const double b = measure_warm(runner, root, iters, out);
    base = round == 0 ? b : std::min(base, b);
    obs::enable(cfg);
    const double a = measure_warm(runner, root, iters, out);
    armed = round == 0 ? a : std::min(armed, a);
  }
  obs::disable();

  const bool compiled = obs::trace_compiled();
  const double armed_ratio = base > 0.0 ? armed / base : 0.0;
  const std::uint64_t spans = obs::total_recorded();

  TextTable t({"configuration", "median us/query", "vs baseline"});
  t.add_row({"recorder disarmed (baseline)", TextTable::num(base * 1e6, 1),
             "1.000"});
  t.add_row({compiled ? "recorder armed" : "recorder armed (no hooks)",
             TextTable::num(armed * 1e6, 1),
             TextTable::num(armed_ratio, 3)});
  std::fputs(t.to_string().c_str(), stdout);

  bool pass = true;
  if (compiled) {
    // Armed bound 5%. The disarmed bound (one relaxed load per hook) is
    // folded into the armed A/B: both blocks run the same hooks, so a
    // disarmed-vs-baseline gap would surface as noise here; the seed
    // baseline for the <=1% compiled-out claim is the untraced build.
    pass = armed_ratio <= 1.05;
    std::printf(
        "\ntracing compiled in: %llu spans recorded; armed overhead %.1f%% "
        "(gate <= 5%%)  [%s]\n",
        static_cast<unsigned long long>(spans), (armed_ratio - 1.0) * 100.0,
        pass ? "PASS" : "FAIL");
  } else {
    // Hooks expand to ((void)0): the armed run records nothing and the
    // binary is bit-for-bit free of trace code in the engine, so the
    // compiled-out cost is zero by construction, not by measurement.
    std::printf(
        "\ntracing compiled out (hooks are ((void)0)): zero overhead by "
        "construction; %llu spans recorded while armed  [PASS]\n",
        static_cast<unsigned long long>(spans));
  }

  JsonFields config;
  config.add_uint("scale", scale)
      .add_uint("threads", env.threads)
      .add_uint("sockets", env.sockets)
      .add_uint("iters", iters)
      .add_bool("trace_compiled", compiled);
  JsonFields metrics;
  metrics.add_num("baseline_us", base * 1e6)
      .add_num("armed_us", armed * 1e6)
      .add_num("armed_ratio", armed_ratio)
      .add_uint("spans_recorded", spans)
      .add_bool("acceptance_pass", pass);
  if (write_bench_json("BENCH_obs_overhead.json", "obs_overhead",
                       std::time(nullptr), config, metrics)) {
    std::printf("wrote BENCH_obs_overhead.json\n");
  }
  return check && !pass ? 1 : 0;
}
