#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "graph/stats.h"
#include "model/calibrate.h"
#include "util/timer.h"

namespace fastbfs::bench {

BenchEnv BenchEnv::from_cli(const CliArgs& args) {
  BenchEnv env;
  env.threads = static_cast<unsigned>(args.get_int("threads", env.threads));
  env.sockets = static_cast<unsigned>(args.get_int("sockets", env.sockets));
  env.runs = static_cast<unsigned>(args.get_int("runs", env.runs));
  env.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  env.scale = args.get("scale", "small");
  env.div = env.scale == "paper" ? 1 : 64;
  env.div = static_cast<unsigned>(args.get_int("div", env.div));
  if (env.div == 0) env.div = 1;
  return env;
}

vid_t BenchEnv::scaled_vertices(std::uint64_t paper_vertices) const {
  return static_cast<vid_t>(
      std::max<std::uint64_t>(paper_vertices / div, 1u << 14));
}

std::size_t BenchEnv::scaled_llc_bytes() const {
  const std::size_t paper_llc = 8u << 20;  // X5570: 8 MB per socket
  return std::max<std::size_t>(paper_llc / div, 1024);
}

BfsOptions BenchEnv::engine_options() const {
  BfsOptions o;
  o.n_threads = threads;
  o.n_sockets = sockets;
  o.llc_bytes_override = scaled_llc_bytes();
  return o;
}

void BenchEnv::print_header(const std::string& title,
                            const std::string& paper_context) const {
  std::printf("== %s ==\n", title.c_str());
  std::printf("paper: %s\n", paper_context.c_str());
  std::printf(
      "setup: scale=%s div=%u threads=%u logical-sockets=%u runs=%u "
      "(simulated NUMA; absolute MTEPS are host-bound, compare shapes)\n\n",
      scale.c_str(), div, threads, sockets, runs);
}

namespace {

template <typename RunFn>
Measured average_runs(const CsrGraph* g_for_roots, vid_t n_vertices,
                      unsigned runs, std::uint64_t seed, RunFn&& run_one) {
  Measured m;
  unsigned done = 0;
  for (unsigned i = 0; i < runs; ++i) {
    const vid_t root =
        g_for_roots != nullptr
            ? pick_nonisolated_root(*g_for_roots, seed + i)
            : static_cast<vid_t>((seed + i) % n_vertices);
    if (root == kInvalidVertex) continue;
    run_one(root, m);
    ++done;
  }
  if (done > 0) {
    m.mteps /= done;
    m.seconds /= done;
    m.edges /= done;
    m.sec_per_edge /= done;
    m.phase1_frac /= done;
    m.phase2_frac /= done;
    m.rearrange_frac /= done;
  }
  return m;
}

}  // namespace

Measured measure_two_phase(const AdjacencyArray& adj, const BfsOptions& opts,
                           unsigned runs, std::uint64_t seed) {
  TwoPhaseBfs engine(adj, opts);
  // Root picking needs degrees; the adjacency array has them.
  Measured m = average_runs(
      nullptr, adj.n_vertices(), runs, seed,
      [&](vid_t root_seed, Measured& acc) {
        // Find a non-isolated root by scanning from the seed position.
        vid_t root = root_seed;
        for (vid_t k = 0; k < adj.n_vertices(); ++k) {
          const vid_t v = static_cast<vid_t>(
              (static_cast<std::uint64_t>(root_seed) + k) % adj.n_vertices());
          if (adj.degree(v) > 0) {
            root = v;
            break;
          }
        }
        const BfsResult r = engine.run(root);
        const RunStats& s = engine.last_run_stats();
        acc.mteps += mteps(r.edges_traversed, r.seconds);
        acc.seconds += r.seconds;
        acc.edges += static_cast<double>(r.edges_traversed);
        acc.sec_per_edge +=
            r.edges_traversed == 0
                ? 0.0
                : r.seconds / static_cast<double>(r.edges_traversed);
        const double phase_total = s.phase1_seconds + s.phase2_seconds +
                                   s.rearrange_seconds;
        if (phase_total > 0) {
          acc.phase1_frac += s.phase1_seconds / phase_total;
          acc.phase2_frac += s.phase2_seconds / phase_total;
          acc.rearrange_frac += s.rearrange_seconds / phase_total;
        }
        acc.alpha_adj = s.alpha_adj;
        const double total = static_cast<double>(s.traffic.total_bytes());
        acc.remote_frac =
            total > 0 ? static_cast<double>(s.traffic.total_remote_bytes()) /
                            total
                      : 0.0;
        for (const auto& st : s.steps) {
          if (st.binned_items >= 256) {
            acc.imbalance = std::max(acc.imbalance, st.phase2_imbalance);
          }
        }
      });
  return m;
}

Measured measure_single_phase(const CsrGraph& g,
                              const baseline::SinglePhaseOptions& opts,
                              unsigned runs, std::uint64_t seed) {
  return average_runs(&g, g.n_vertices(), runs, seed,
                      [&](vid_t root, Measured& acc) {
                        const BfsResult r =
                            baseline::single_phase_bfs(g, root, opts);
                        acc.mteps += mteps(r.edges_traversed, r.seconds);
                        acc.seconds += r.seconds;
                        acc.edges += static_cast<double>(r.edges_traversed);
                        acc.sec_per_edge +=
                            r.edges_traversed == 0
                                ? 0.0
                                : r.seconds /
                                      static_cast<double>(r.edges_traversed);
                      });
}

Measured measure_serial(const CsrGraph& g, unsigned runs, std::uint64_t seed) {
  return average_runs(&g, g.n_vertices(), runs, seed,
                      [&](vid_t root, Measured& acc) {
                        const BfsResult r = reference_bfs(g, root);
                        acc.mteps += mteps(r.edges_traversed, r.seconds);
                        acc.seconds += r.seconds;
                        acc.edges += static_cast<double>(r.edges_traversed);
                        acc.sec_per_edge +=
                            r.edges_traversed == 0
                                ? 0.0
                                : r.seconds /
                                      static_cast<double>(r.edges_traversed);
                      });
}

// Host calibration moved into the library (model/calibrate.h) so the CLI
// can use it too; these forwarders keep every existing bench call site.
double read_bandwidth(std::size_t bytes, int reps) {
  return model::read_bandwidth(bytes, reps);
}

double write_bandwidth(std::size_t bytes, int reps) {
  return model::write_bandwidth(bytes, reps);
}

double copy_bandwidth(std::size_t bytes, int reps) {
  return model::copy_bandwidth(bytes, reps);
}

model::PlatformParams calibrated_host_params() {
  return model::calibrated_host_params();
}

double host_freq_ghz() { return model::host_freq_ghz(); }

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  // JSON has no inf/nan literals; null is the conventional stand-in.
  for (const char* p = buf; *p; ++p) {
    if (*p == 'n' || *p == 'i') return "null";
  }
  return buf;
}

}  // namespace

JsonFields& JsonFields::add_str(const std::string& key,
                                const std::string& v) {
  fields_.emplace_back(key, "\"" + json_escape(v) + "\"");
  return *this;
}

JsonFields& JsonFields::add_int(const std::string& key, std::int64_t v) {
  fields_.emplace_back(key, std::to_string(v));
  return *this;
}

JsonFields& JsonFields::add_uint(const std::string& key, std::uint64_t v) {
  fields_.emplace_back(key, std::to_string(v));
  return *this;
}

JsonFields& JsonFields::add_num(const std::string& key, double v) {
  fields_.emplace_back(key, json_double(v));
  return *this;
}

JsonFields& JsonFields::add_bool(const std::string& key, bool v) {
  fields_.emplace_back(key, v ? "true" : "false");
  return *this;
}

JsonFields& JsonFields::add_raw(const std::string& key,
                                const std::string& raw_json) {
  fields_.emplace_back(key, raw_json);
  return *this;
}

std::string JsonFields::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + json_escape(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

bool write_bench_json(const std::string& path, const std::string& name,
                      std::int64_t timestamp, const JsonFields& config,
                      const JsonFields& metrics) {
  std::ofstream out(path);
  if (!out) {
    std::printf("warning: could not write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"" << json_escape(name) << "\",\n"
      << "  \"schema_version\": " << kBenchSchemaVersion << ",\n"
      << "  \"timestamp\": " << timestamp << ",\n"
      << "  \"config\": " << config.str() << ",\n"
      << "  \"metrics\": " << metrics.str() << "\n}\n";
  return out.good();
}

}  // namespace fastbfs::bench
