#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/stats.h"
#include "platform/cache_info.h"
#include "util/aligned_buffer.h"
#include "util/timer.h"

namespace fastbfs::bench {

BenchEnv BenchEnv::from_cli(const CliArgs& args) {
  BenchEnv env;
  env.threads = static_cast<unsigned>(args.get_int("threads", env.threads));
  env.sockets = static_cast<unsigned>(args.get_int("sockets", env.sockets));
  env.runs = static_cast<unsigned>(args.get_int("runs", env.runs));
  env.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  env.scale = args.get("scale", "small");
  env.div = env.scale == "paper" ? 1 : 64;
  env.div = static_cast<unsigned>(args.get_int("div", env.div));
  if (env.div == 0) env.div = 1;
  return env;
}

vid_t BenchEnv::scaled_vertices(std::uint64_t paper_vertices) const {
  return static_cast<vid_t>(
      std::max<std::uint64_t>(paper_vertices / div, 1u << 14));
}

std::size_t BenchEnv::scaled_llc_bytes() const {
  const std::size_t paper_llc = 8u << 20;  // X5570: 8 MB per socket
  return std::max<std::size_t>(paper_llc / div, 1024);
}

BfsOptions BenchEnv::engine_options() const {
  BfsOptions o;
  o.n_threads = threads;
  o.n_sockets = sockets;
  o.llc_bytes_override = scaled_llc_bytes();
  return o;
}

void BenchEnv::print_header(const std::string& title,
                            const std::string& paper_context) const {
  std::printf("== %s ==\n", title.c_str());
  std::printf("paper: %s\n", paper_context.c_str());
  std::printf(
      "setup: scale=%s div=%u threads=%u logical-sockets=%u runs=%u "
      "(simulated NUMA; absolute MTEPS are host-bound, compare shapes)\n\n",
      scale.c_str(), div, threads, sockets, runs);
}

namespace {

template <typename RunFn>
Measured average_runs(const CsrGraph* g_for_roots, vid_t n_vertices,
                      unsigned runs, std::uint64_t seed, RunFn&& run_one) {
  Measured m;
  unsigned done = 0;
  for (unsigned i = 0; i < runs; ++i) {
    const vid_t root =
        g_for_roots != nullptr
            ? pick_nonisolated_root(*g_for_roots, seed + i)
            : static_cast<vid_t>((seed + i) % n_vertices);
    if (root == kInvalidVertex) continue;
    run_one(root, m);
    ++done;
  }
  if (done > 0) {
    m.mteps /= done;
    m.seconds /= done;
    m.edges /= done;
    m.sec_per_edge /= done;
    m.phase1_frac /= done;
    m.phase2_frac /= done;
    m.rearrange_frac /= done;
  }
  return m;
}

}  // namespace

Measured measure_two_phase(const AdjacencyArray& adj, const BfsOptions& opts,
                           unsigned runs, std::uint64_t seed) {
  TwoPhaseBfs engine(adj, opts);
  // Root picking needs degrees; the adjacency array has them.
  Measured m = average_runs(
      nullptr, adj.n_vertices(), runs, seed,
      [&](vid_t root_seed, Measured& acc) {
        // Find a non-isolated root by scanning from the seed position.
        vid_t root = root_seed;
        for (vid_t k = 0; k < adj.n_vertices(); ++k) {
          const vid_t v = static_cast<vid_t>(
              (static_cast<std::uint64_t>(root_seed) + k) % adj.n_vertices());
          if (adj.degree(v) > 0) {
            root = v;
            break;
          }
        }
        const BfsResult r = engine.run(root);
        const RunStats& s = engine.last_run_stats();
        acc.mteps += mteps(r.edges_traversed, r.seconds);
        acc.seconds += r.seconds;
        acc.edges += static_cast<double>(r.edges_traversed);
        acc.sec_per_edge +=
            r.edges_traversed == 0
                ? 0.0
                : r.seconds / static_cast<double>(r.edges_traversed);
        const double phase_total = s.phase1_seconds + s.phase2_seconds +
                                   s.rearrange_seconds;
        if (phase_total > 0) {
          acc.phase1_frac += s.phase1_seconds / phase_total;
          acc.phase2_frac += s.phase2_seconds / phase_total;
          acc.rearrange_frac += s.rearrange_seconds / phase_total;
        }
        acc.alpha_adj = s.alpha_adj;
        const double total = static_cast<double>(s.traffic.total_bytes());
        acc.remote_frac =
            total > 0 ? static_cast<double>(s.traffic.total_remote_bytes()) /
                            total
                      : 0.0;
        for (const auto& st : s.steps) {
          if (st.binned_items >= 256) {
            acc.imbalance = std::max(acc.imbalance, st.phase2_imbalance);
          }
        }
      });
  return m;
}

Measured measure_single_phase(const CsrGraph& g,
                              const baseline::SinglePhaseOptions& opts,
                              unsigned runs, std::uint64_t seed) {
  return average_runs(&g, g.n_vertices(), runs, seed,
                      [&](vid_t root, Measured& acc) {
                        const BfsResult r =
                            baseline::single_phase_bfs(g, root, opts);
                        acc.mteps += mteps(r.edges_traversed, r.seconds);
                        acc.seconds += r.seconds;
                        acc.edges += static_cast<double>(r.edges_traversed);
                        acc.sec_per_edge +=
                            r.edges_traversed == 0
                                ? 0.0
                                : r.seconds /
                                      static_cast<double>(r.edges_traversed);
                      });
}

Measured measure_serial(const CsrGraph& g, unsigned runs, std::uint64_t seed) {
  return average_runs(&g, g.n_vertices(), runs, seed,
                      [&](vid_t root, Measured& acc) {
                        const BfsResult r = reference_bfs(g, root);
                        acc.mteps += mteps(r.edges_traversed, r.seconds);
                        acc.seconds += r.seconds;
                        acc.edges += static_cast<double>(r.edges_traversed);
                        acc.sec_per_edge +=
                            r.edges_traversed == 0
                                ? 0.0
                                : r.seconds /
                                      static_cast<double>(r.edges_traversed);
                      });
}

double read_bandwidth(std::size_t bytes, int reps) {
  AlignedBuffer<std::uint64_t> buf(bytes / 8, kPageSize);
  buf.fill(1);
  volatile std::uint64_t sink = 0;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < buf.size(); ++i) sum += buf[i];
    const double s = t.seconds();
    sink = sink + sum;
    best = std::max(best, static_cast<double>(bytes) / s / 1e9);
  }
  return best;
}

double write_bandwidth(std::size_t bytes, int reps) {
  AlignedBuffer<std::uint64_t> buf(bytes / 8, kPageSize);
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = i;
    const double s = t.seconds();
    best = std::max(best, static_cast<double>(bytes) / s / 1e9);
  }
  return best;
}

double copy_bandwidth(std::size_t bytes, int reps) {
  AlignedBuffer<std::uint64_t> a(bytes / 16, kPageSize);
  AlignedBuffer<std::uint64_t> b(bytes / 16, kPageSize);
  a.fill(3);
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    for (std::size_t i = 0; i < a.size(); ++i) b[i] = a[i];
    const double s = t.seconds();
    // Copy moves read + write traffic.
    best = std::max(best, static_cast<double>(a.size() * 16) / s / 1e9);
  }
  return best;
}

model::PlatformParams calibrated_host_params() {
  const CacheGeometry host = host_cache_geometry();
  model::PlatformParams p = model::nehalem_ep();
  p.freq_ghz = host_freq_ghz();
  const std::size_t big = 128u << 20;
  const std::size_t small = host.l2_bytes / 2;
  p.b_mem = read_bandwidth(big, 2);
  p.b_mem_max = std::max(p.b_mem, copy_bandwidth(big, 2));
  p.b_llc_to_l2 = read_bandwidth(small, 500);
  p.b_l2_to_llc = write_bandwidth(small, 500);
  p.l2_bytes = static_cast<double>(host.l2_bytes);
  p.llc_bytes = static_cast<double>(host.llc_bytes);
  p.n_sockets = 1;
  return p;
}

double host_freq_ghz() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("cpu MHz", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        const double mhz = std::strtod(line.c_str() + colon + 1, nullptr);
        if (mhz > 100.0) return mhz / 1000.0;
      }
    }
  }
  return 2.0;
}

}  // namespace fastbfs::bench
