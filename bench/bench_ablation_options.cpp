// Ablation of the latency-hiding options (Sec. V-A "Effect of latency
// hiding" + design choices DESIGN.md calls out).
//
// Paper claims: BV_N rearrangement gains ~1.15x on average; SIMD binning
// cuts instructions 1.3-2x; prefetching is part of removing the latency
// bound. Each row disables exactly one feature from the full
// configuration and reports the relative throughput (full / ablated —
// >1 means the feature helps on this host).
#include <cstdio>

#include "bench_common.h"
#include "gen/rmat.h"
#include "gen/uniform.h"
#include "graph/adjacency_array.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header(
      "Ablation: latency-hiding and design options",
      "rearrangement ~1.15x; SIMD binning 1.3-2x instruction reduction; "
      "atomic-free updates remove the latency bound");

  const vid_t n = env.scaled_vertices(16u << 20);
  const unsigned scale = floor_log2(ceil_pow2(n));
  const CsrGraph rmat = rmat_graph(scale, 8, env.seed);
  const CsrGraph ur = uniform_graph(n, 16, env.seed);

  TextTable t({"graph", "ablation", "MTEPS", "full/ablated", "paper"});
  struct Ablation {
    const char* name;
    void (*apply)(BfsOptions&);
    const char* paper;
  };
  const Ablation ablations[] = {
      {"(full configuration)", [](BfsOptions&) {}, "-"},
      {"no rearrangement",
       [](BfsOptions& o) { o.rearrange = false; }, "~1.15x"},
      {"no SIMD binning", [](BfsOptions& o) { o.use_simd = false; },
       "1.3-2x fewer instr."},
      {"no software prefetch",
       [](BfsOptions& o) { o.use_prefetch = false; }, "(latency hiding)"},
      {"markers forced",
       [](BfsOptions& o) { o.pbv_encoding = PbvEncoding::kMarkers; },
       "footnote 4"},
      {"pairs forced",
       [](BfsOptions& o) { o.pbv_encoding = PbvEncoding::kPairs; },
       "footnote 4"},
      {"atomic VIS (Fig. 2a)",
       [](BfsOptions& o) { o.vis_mode = VisMode::kAtomicBit; },
       "atomic-free wins"},
      {"no load balancing",
       [](BfsOptions& o) { o.scheme = SocketScheme::kSocketAware; },
       "5-30% (graph-dep.)"},
  };

  struct Workload {
    const char* name;
    const CsrGraph* g;
  };
  for (const Workload w : {Workload{"RMAT", &rmat}, Workload{"UR", &ur}}) {
    const AdjacencyArray adj(*w.g, env.sockets);
    double full = 0.0;
    for (const Ablation& a : ablations) {
      BfsOptions o = env.engine_options();
      a.apply(o);
      const Measured m = measure_two_phase(adj, o, env.runs, env.seed);
      if (full == 0.0) full = m.mteps > 0 ? m.mteps : 1.0;
      t.add_row({w.name, a.name, TextTable::num(m.mteps, 1),
                 TextTable::num(m.mteps > 0 ? full / m.mteps : 0.0, 2),
                 a.paper});
    }
  }
  std::fputs(t.to_string().c_str(), stdout);

  // Prefetch-distance sweep (Sec. III-C item 3 leaves PREF_DIST open).
  {
    const AdjacencyArray adj(rmat, env.sockets);
    TextTable sweep({"PREF_DIST", "MTEPS"});
    for (const int dist : {1, 4, 8, 16, 32, 64}) {
      BfsOptions o = env.engine_options();
      o.prefetch_distance = dist;
      const Measured m = measure_two_phase(adj, o, env.runs, env.seed);
      sweep.add_row({TextTable::num(std::uint64_t(dist)),
                     TextTable::num(m.mteps, 1)});
    }
    std::printf("\nprefetch distance sweep (RMAT):\n%s",
                sweep.to_string().c_str());
  }

  std::printf(
      "\nnote: on a single physical core the cache/bandwidth effects the\n"
      "paper measures are muted; ratios near 1.0 are expected for prefetch\n"
      "and rearrangement here, and the columns chiefly demonstrate that\n"
      "every option is a pure performance toggle (results stay correct —\n"
      "enforced by tests/test_two_phase.cpp).\n");
  return 0;
}
