// Table I: platform characteristics.
//
// Prints the paper's dual-socket Xeon X5570 figures (encoded as the
// analytical model's default PlatformParams) next to bandwidths measured
// on this host with STREAM-style kernels. The host numbers are what you
// would substitute into model::PlatformParams to recalibrate the Sec. IV
// model for this machine.
#include <cstdio>

#include "bench_common.h"
#include "model/platform_params.h"
#include "platform/cache_info.h"
#include "util/aligned_buffer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header("Table I: platform characteristics",
                   "dual-socket Intel Xeon X5570 (Nehalem-EP), 8 cores @ "
                   "2.93 GHz, 96 GB RAM");

  const auto p = model::nehalem_ep();
  const CacheGeometry host = host_cache_geometry();

  // Host measurements: a DRAM-sized working set for main-memory bandwidth
  // and a half-L2-sized set for cache bandwidth.
  const std::size_t big = 256u << 20;
  const std::size_t small = host.l2_bytes / 2;
  const double host_read = bench::read_bandwidth(big, 3);
  const double host_write = bench::write_bandwidth(big, 3);
  const double host_copy = bench::copy_bandwidth(big, 3);
  const double cache_read = bench::read_bandwidth(small, 2000);
  const double cache_write = bench::write_bandwidth(small, 2000);

  TextTable t({"characteristic", "paper (Table I)", "this host (measured)"});
  t.add_row({"core frequency (GHz)", TextTable::num(p.freq_ghz, 2),
             TextTable::num(host_freq_ghz(), 2)});
  t.add_row({"achievable DDR read BW (GB/s, per socket)",
             TextTable::num(p.b_mem, 1), TextTable::num(host_read, 1)});
  t.add_row({"DDR write BW (GB/s)", "(within 2x22 total)",
             TextTable::num(host_write, 1)});
  t.add_row({"DDR copy BW (GB/s, r+w)", "(peak 2 x 32)",
             TextTable::num(host_copy, 1)});
  t.add_row({"read BW LLC->L2 (GB/s)", TextTable::num(p.b_llc_to_l2, 1),
             TextTable::num(cache_read, 1) + " (L2-resident)"});
  t.add_row({"write BW L2->LLC (GB/s)", TextTable::num(p.b_l2_to_llc, 1),
             TextTable::num(cache_write, 1) + " (L2-resident)"});
  t.add_row({"QPI BW per direction (GB/s)", TextTable::num(p.b_qpi, 1),
             "n/a (single physical socket; simulated)"});
  t.add_row({"LLC size (MB per socket)",
             TextTable::num(p.llc_bytes / 1048576.0, 1),
             TextTable::num(host.llc_bytes / 1048576.0, 1)});
  t.add_row({"L2 size (KB per core)", TextTable::num(p.l2_bytes / 1024.0, 0),
             TextTable::num(host.l2_bytes / 1024.0, 0)});
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\nnote: the model's Table I constants are unit-tested against the\n"
      "paper's worked examples (tests/test_model.cpp); host numbers above\n"
      "recalibrate PlatformParams when modelling this machine.\n");
  return 0;
}
