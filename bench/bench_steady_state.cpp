// Zero-allocation steady state (DESIGN.md "Engine workspace lifecycle").
//
// Claim under test: the shared-plan + reusable-workspace engine serves a
// warm query stream faster than the pre-refactor engine (grid-512 per-run
// latency is the cross-build acceptance number — compare Table 1's warm
// run_into() row against the same row from a pre-refactor build), and
// in-binary the recycled run_into() path is at parity with the
// allocate-per-call run() path (both share the engine gains; run_into()
// additionally performs zero heap allocations, enforced by
// tests/test_steady_state.cpp) with Graph500 harmonic TEPS on RMAT-18 no
// worse than per-call.
//
// Three tables:
//   1. per-graph query-serving latency: run() per call vs warm run_into(),
//      with the engine's reusable-workspace footprint;
//   2. warm-up profile: latency of run 1..8 on a cold runner (run 1 pays
//      all construction; the curve must flatten immediately after);
//   3. RMAT run_batch harmonic TEPS, per-call vs recycled.
//
// The acceptance configurations are grid-512 and RMAT scale-18 ef-16: run
// with --div=1 (or --scale=paper) to measure them unscaled.
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <vector>

#include "bench_common.h"
#include "gen/grid.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "util/timer.h"

namespace {

using namespace fastbfs;

/// Seconds for one call of `fn`, appended to `out`.
template <typename F>
void time_once(std::vector<double>& out, F&& fn) {
  Timer t;
  fn();
  out.push_back(t.seconds());
}

/// Median of a sample vector (robust to scheduler noise on a shared host).
double median_seconds(std::vector<double> s) {
  std::sort(s.begin(), s.end());
  const std::size_t n = s.size();
  return n == 0 ? 0.0 : (s[(n - 1) / 2] + s[n / 2]) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header(
      "Zero-allocation steady state: warm run_into() vs per-call run()",
      "acceptance: grid-512 warm latency improved, RMAT-18 harmonic "
      "TEPS no worse");

  const vid_t grid_n = env.scaled_vertices(512u * 512u);
  const unsigned grid_side = 1u << (floor_log2(ceil_pow2(grid_n)) / 2);
  const unsigned rmat_scale = floor_log2(ceil_pow2(env.scaled_vertices(1u << 18)));
  const CsrGraph grid = grid_graph(grid_side, grid_side, 1.0, env.seed);
  const CsrGraph rmat = rmat_graph(rmat_scale, 16, env.seed);
  const unsigned iters = std::max(env.runs * 8u, 16u);

  struct Workload {
    const char* name;
    const CsrGraph* g;
  };
  const Workload workloads[] = {{"grid-512", &grid}, {"RMAT ef-16", &rmat}};

  double grid_speedup = 0.0;
  {
    TextTable t({"graph", "mode", "median us/query", "speedup", "MTEPS",
                 "workspace KiB"});
    for (const Workload& w : workloads) {
      const vid_t root = pick_nonisolated_root(*w.g, env.seed);
      BfsRunner runner(*w.g, env.engine_options());

      // Per-call path: run() returns a fresh BfsResult — every query pays
      // a |V|-sized depth/parent allocation + INF fill. Recycled path: one
      // BfsResult for the whole query stream. The two are interleaved
      // call-by-call with alternating order (a block of one mode then a
      // block of the other would fold host scheduling drift into the
      // comparison) and summarized by the median.
      runner.run(root);  // engine warm-up, excluded from both timings
      BfsResult out;
      runner.run_into(root, out);  // buffer warm-up
      double edges = 0.0;
      std::vector<double> cold_s, warm_s;
      const auto one_cold = [&] {
        time_once(cold_s, [&] {
          const BfsResult r = runner.run(root);
          edges = static_cast<double>(r.edges_traversed);
        });
      };
      const auto one_warm = [&] {
        time_once(warm_s, [&] { runner.run_into(root, out); });
      };
      for (unsigned i = 0; i < iters; ++i) {
        if (i % 2 == 0) {
          one_cold();
          one_warm();
        } else {
          one_warm();
          one_cold();
        }
      }
      const double cold = median_seconds(cold_s);
      const double warm = median_seconds(warm_s);

      const double speedup = warm > 0.0 ? cold / warm : 0.0;
      if (w.g == &grid) grid_speedup = speedup;
      t.add_row({w.name, "run()", TextTable::num(cold * 1e6, 1), "1.00",
                 TextTable::num(edges / cold / 1e6, 1), ""});
      t.add_row({w.name, "run_into()", TextTable::num(warm * 1e6, 1),
                 TextTable::num(speedup, 2),
                 TextTable::num(edges / warm / 1e6, 1),
                 TextTable::num(runner.workspace_bytes() / 1024.0, 0)});
    }
    std::fputs(t.to_string().c_str(), stdout);
    // In-binary gate: parity (>= 0.95x). Both modes run the shared-plan
    // engine, so the refactor's latency win only shows against a
    // pre-refactor build; what must hold here is that recycling buffers
    // never costs a query stream measurable latency.
    std::printf(
        "\nacceptance (grid-512 recycled vs per-call, in-binary parity): "
        "%.2fx  [%s]\n",
        grid_speedup, grid_speedup >= 0.95 ? "PASS" : "FAIL");
  }

  // Warm-up profile: the first traversal pays every workspace allocation;
  // the steady state must be reached within a couple of runs, not
  // asymptotically.
  {
    TextTable t({"graph", "run1 us", "run2 us", "run3 us", "run8 us"});
    for (const Workload& w : workloads) {
      const vid_t root = pick_nonisolated_root(*w.g, env.seed);
      BfsRunner runner(*w.g, env.engine_options());
      BfsResult out;
      std::vector<double> us;
      for (int i = 0; i < 8; ++i) {
        Timer timer;
        runner.run_into(root, out);
        us.push_back(timer.seconds() * 1e6);
      }
      t.add_row({w.name, TextTable::num(us[0], 1), TextTable::num(us[1], 1),
                 TextTable::num(us[2], 1), TextTable::num(us[7], 1)});
    }
    std::printf("\ncold-to-warm latency profile (run_into, same root):\n%s",
                t.to_string().c_str());
  }

  // Graph500 batch: run_batch now routes through run_into with a single
  // recycled result; its harmonic TEPS must be no worse than running the
  // same roots through the per-call API.
  double batch_ratio = 0.0, recycled_harm = 0.0, percall_harm = 0.0;
  {
    const unsigned n_roots = std::max(env.runs, 8u);
    BfsRunner batch_runner(rmat, env.engine_options());
    const BatchResult recycled =
        batch_runner.run_batch(rmat, n_roots, env.seed, /*validate=*/true);

    BfsRunner percall_runner(rmat, env.engine_options());
    double inv_sum = 0.0;
    unsigned counted = 0;
    for (const vid_t root : recycled.roots) {
      const BfsResult r = percall_runner.run(root);
      if (r.seconds <= 0.0 || r.edges_traversed == 0) continue;
      inv_sum += 2.0 * r.seconds / static_cast<double>(r.edges_traversed);
      ++counted;
    }
    percall_harm = counted > 0 && inv_sum > 0.0 ? counted / inv_sum : 0.0;
    recycled_harm = recycled.harmonic_teps;
    batch_ratio =
        percall_harm > 0.0 ? recycled.harmonic_teps / percall_harm : 0.0;
    std::printf(
        "\nRMAT-%u run_batch harmonic TEPS  recycled %.1f M  per-call %.1f M"
        "  ratio %.2fx  valid %u/%u  [%s]\n",
        rmat_scale, recycled.harmonic_teps / 1e6, percall_harm / 1e6,
        batch_ratio, recycled.validated, recycled.runs,
        batch_ratio >= 0.95 ? "PASS" : "FAIL");
  }

  JsonFields config;
  config.add_uint("grid_side", grid_side)
      .add_uint("rmat_scale", rmat_scale)
      .add_uint("threads", env.threads)
      .add_uint("sockets", env.sockets)
      .add_uint("iters", iters);
  JsonFields metrics;
  metrics.add_num("grid_recycled_speedup", grid_speedup)
      .add_num("batch_recycled_harmonic_teps", recycled_harm)
      .add_num("batch_percall_harmonic_teps", percall_harm)
      .add_num("batch_teps_ratio", batch_ratio)
      .add_bool("acceptance_pass",
                grid_speedup >= 0.95 && batch_ratio >= 0.95);
  if (write_bench_json("BENCH_steady_state.json", "steady_state",
                       std::time(nullptr), config, metrics)) {
    std::printf("wrote BENCH_steady_state.json\n");
  }
  return 0;
}
