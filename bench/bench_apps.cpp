// EdgeMap application throughput (DESIGN.md §5i).
//
// The vertex-program layer's performance claim: routing an algorithm
// through EdgeMapEngine inherits the two-phase pipeline's parallel
// machinery, so each app must beat its own naive serial oracle — the
// same oracle the differential tests trust for correctness — by a wide
// margin. The oracles are deliberately simple (sweep-to-fixpoint label
// propagation, serial power iteration, cascade peeling, Bellman-Ford
// sweeps), so this is a sanity floor, not a contest: --check gates each
// app's warm median at >= 2x its oracle (CI apps-smoke runs this at 8
// threads). Emits BENCH_apps.json with per-app numbers plus the
// harmonic-mean throughput across apps (harmonic, so one slow app drags
// the summary the way it would drag a mixed workload).
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "apps/components.h"
#include "apps/kcore.h"
#include "apps/oracles.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "bench_common.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "util/timer.h"

namespace {

using namespace fastbfs;

double median_seconds(std::vector<double> s) {
  std::sort(s.begin(), s.end());
  const std::size_t n = s.size();
  return n == 0 ? 0.0 : (s[(n - 1) / 2] + s[n / 2]) / 2.0;
}

struct AppRow {
  std::string name;
  double engine_s = 0.0;  // warm median
  double oracle_s = 0.0;
  double speedup = 0.0;
  double mteps = 0.0;  // app-specific edge metric / engine_s
};

/// Warm median over `iters` runs of `run` (first run is the warm-up and
/// is discarded: it pays allocation and page-fault cost the steady state
/// never sees — see SteadyState.WarmEdgeMapAppAllocatesNothing).
template <typename F>
double measure_warm(F&& run, unsigned iters) {
  run();
  std::vector<double> s;
  s.reserve(iters);
  for (unsigned i = 0; i < iters; ++i) {
    Timer t;
    run();
    s.push_back(t.seconds());
  }
  return median_seconds(s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  const BenchEnv env = BenchEnv::from_cli(args);
  const bool check = args.get_bool("check", false);
  env.print_header(
      "EdgeMap apps: warm throughput vs serial oracles",
      "beyond the paper: Ligra-style vertex programs over the two-phase "
      "pipeline; gate: each app >= 2x its serial oracle");

  const unsigned scale =
      floor_log2(ceil_pow2(env.scaled_vertices(1u << 20)));
  const CsrGraph g = rmat_graph(scale, 16, env.seed);
  const double edges = static_cast<double>(g.n_edges());
  std::printf("graph: RMAT scale %u, %u vertices, %llu arcs\n\n", scale,
              g.n_vertices(), static_cast<unsigned long long>(g.n_edges()));

  // Unlike the figure benches, apps run against the *host's* cache
  // geometry: the scaled-LLC override exists to preserve paper-shape
  // VIS-vs-cache relationships, and here it just miscalibrates binning.
  BfsOptions opts;
  opts.n_threads = env.threads;
  opts.n_sockets = env.sockets;
  opts.cache = host_cache_geometry();
  const AdjacencyArray adj(g, opts.n_sockets);
  const unsigned iters = std::max(env.runs * 2u, 5u);
  std::vector<AppRow> rows;

  {
    // Fixed iteration count on both sides: the engine and the oracle run
    // the identical recurrence the same number of times.
    apps::PageRankOptions po;
    po.tolerance = 0.0;
    po.max_iterations = 20;
    apps::PageRank pr(adj, opts, po);
    apps::PageRankResult r;
    AppRow row;
    row.name = "pagerank (20 iter)";
    row.engine_s = measure_warm([&] { pr.run_into(r); }, iters);
    Timer t;
    const std::vector<double> oracle = apps::pagerank_oracle(adj, po);
    row.oracle_s = t.seconds();
    row.mteps = mteps(static_cast<std::uint64_t>(edges) * po.max_iterations,
                      row.engine_s);
    (void)oracle;
    rows.push_back(row);
  }
  {
    apps::ConnectedComponents cc(adj, opts);
    apps::ComponentsResult r;
    AppRow row;
    row.name = "connected components";
    row.engine_s = measure_warm([&] { cc.run_into(r); }, iters);
    Timer t;
    const std::vector<vid_t> oracle = apps::cc_oracle(adj);
    row.oracle_s = t.seconds();
    row.mteps = mteps(static_cast<std::uint64_t>(edges), row.engine_s);
    (void)oracle;
    rows.push_back(row);
  }
  {
    apps::KCoreDecomposition kc(adj, opts);
    apps::KCoreResult r;
    AppRow row;
    row.name = "k-core decomposition";
    row.engine_s = measure_warm([&] { kc.run_into(r); }, iters);
    Timer t;
    const std::vector<vid_t> oracle = apps::kcore_oracle(adj);
    row.oracle_s = t.seconds();
    row.mteps = mteps(static_cast<std::uint64_t>(edges), row.engine_s);
    (void)oracle;
    rows.push_back(row);
  }
  {
    const vid_t source = pick_nonisolated_root(g, env.seed);
    apps::SsspOptions so;
    so.weights.seed = env.seed;
    apps::DeltaSteppingSssp sssp(adj, opts, so);
    apps::SsspResult r;
    AppRow row;
    row.name = "sssp (delta-stepping)";
    row.engine_s = measure_warm([&] { sssp.run_into(source, r); }, iters);
    Timer t;
    const std::vector<std::uint32_t> oracle =
        apps::sssp_oracle(adj, source, so.weights);
    row.oracle_s = t.seconds();
    row.mteps = mteps(static_cast<std::uint64_t>(edges), row.engine_s);
    (void)oracle;
    rows.push_back(row);
  }

  TextTable t({"app", "warm median ms", "oracle ms", "speedup", "MTEPS"});
  double inv_sum = 0.0, min_speedup = 1e300;
  for (AppRow& row : rows) {
    row.speedup = row.engine_s > 0.0 ? row.oracle_s / row.engine_s : 0.0;
    min_speedup = std::min(min_speedup, row.speedup);
    inv_sum += row.mteps > 0.0 ? 1.0 / row.mteps : 0.0;
    t.add_row({row.name, TextTable::num(row.engine_s * 1e3, 2),
               TextTable::num(row.oracle_s * 1e3, 2),
               TextTable::num(row.speedup, 1),
               TextTable::num(row.mteps, 1)});
  }
  const double hmean_mteps =
      inv_sum > 0.0 ? static_cast<double>(rows.size()) / inv_sum : 0.0;
  std::fputs(t.to_string().c_str(), stdout);

  // The >=2x gate presumes the configured worker count actually exists:
  // the engine pays ~2-4x generic-layer overhead per edge (claim CAS,
  // subset bookkeeping, atomics) that only parallel speedup can recover.
  // On an undersized host (CI smoke runners included) the numbers are
  // reported but the gate cannot physically hold, so it is not enforced.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool gate_enforced = hw >= env.threads;
  const bool pass = !gate_enforced || min_speedup >= 2.0;
  std::printf(
      "\nharmonic-mean throughput %.1f MTEPS; min oracle speedup %.1fx "
      "(gate >= 2x at %u threads)  [%s]\n",
      hmean_mteps, min_speedup, env.threads,
      !gate_enforced ? "REPORT-ONLY"
                     : (min_speedup >= 2.0 ? "PASS" : "FAIL"));
  if (!gate_enforced) {
    std::printf(
        "gate not enforced: host has %u hardware threads < %u configured "
        "workers (no parallel speedup to measure)\n",
        hw, env.threads);
  }

  JsonFields config;
  config.add_uint("scale", scale)
      .add_uint("threads", env.threads)
      .add_uint("sockets", env.sockets)
      .add_uint("warm_iters", iters)
      .add_uint("seed", env.seed);
  JsonFields metrics;
  for (const AppRow& row : rows) {
    std::string key = row.name.substr(0, row.name.find(' '));
    metrics.add_num(key + "_warm_ms", row.engine_s * 1e3)
        .add_num(key + "_oracle_ms", row.oracle_s * 1e3)
        .add_num(key + "_speedup", row.speedup)
        .add_num(key + "_mteps", row.mteps);
  }
  metrics.add_num("harmonic_mean_mteps", hmean_mteps)
      .add_num("min_speedup", min_speedup)
      .add_uint("hardware_threads", hw)
      .add_bool("gate_enforced", gate_enforced)
      .add_bool("acceptance_pass", pass);
  if (write_bench_json("BENCH_apps.json", "apps", std::time(nullptr), config,
                       metrics)) {
    std::printf("wrote BENCH_apps.json\n");
  }
  return check && !pass ? 1 : 0;
}
