// Figure 5: multi-socket schemes on UR, R-MAT and the stress-case
// bipartite graph (|V| = 16M, degrees 8 and 32).
//
// Three schemes, the figure's bars:
//   none          no binning, no socket awareness (worst ping-pong),
//   socket-aware  static bin->socket ownership (locality, no balance),
//   load-balanced the paper's scheme (locality + even split).
// Paper result: UR shows no gap between aware and balanced; R-MAT gives
// the balanced scheme ~5-10%; the stress case gives it up to ~30%. The
// simulated-NUMA audit columns show the *mechanism* directly: worst
// per-step socket imbalance and the remote-byte fraction.
#include <cstdio>

#include "bench_common.h"
#include "gen/rmat.h"
#include "gen/stress.h"
#include "gen/uniform.h"
#include "graph/adjacency_array.h"
#include "util/types.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header(
      "Figure 5: multi-socket schemes (none / socket-aware / load-balanced)",
      "UR: aware == balanced; RMAT: balanced +5-10%; stress case: balanced "
      "up to +30%");

  const vid_t n = env.scaled_vertices(16u << 20);
  const unsigned scale = floor_log2(ceil_pow2(n));
  const unsigned degrees[] = {8, 32};

  TextTable t({"graph", "deg", "scheme", "rel. MTEPS", "worst imbalance",
               "remote bytes %", "paper"});

  for (const unsigned deg : degrees) {
    if (static_cast<std::uint64_t>(n) * deg > (48u << 20)) continue;
    struct Workload {
      const char* name;
      CsrGraph graph;
      const char* paper;
    };
    const Workload workloads[] = {
        {"UR", uniform_graph(n, deg, env.seed + deg), "aware==balanced"},
        {"RMAT", rmat_graph(scale, deg / 2, env.seed + deg),
         "balanced +5-10%"},
        {"stress", stress_bipartite_graph(n, deg, env.seed + deg),
         "balanced up to +30%"},
    };
    for (const Workload& w : workloads) {
      const AdjacencyArray adj(w.graph, env.sockets);
      double base = 0.0;
      for (const SocketScheme scheme :
           {SocketScheme::kNone, SocketScheme::kSocketAware,
            SocketScheme::kLoadBalanced}) {
        BfsOptions o = env.engine_options();
        o.scheme = scheme;
        const Measured m = measure_two_phase(adj, o, env.runs, env.seed);
        if (scheme == SocketScheme::kNone) base = m.mteps > 0 ? m.mteps : 1.0;
        const char* name = scheme == SocketScheme::kNone ? "none"
                           : scheme == SocketScheme::kSocketAware
                               ? "socket-aware"
                               : "load-balanced";
        t.add_row({w.name, TextTable::num(std::uint64_t{deg}), name,
                   TextTable::num(m.mteps / base, 2),
                   TextTable::num(m.imbalance, 2),
                   TextTable::num(m.remote_frac * 100.0, 1), w.paper});
      }
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\n'worst imbalance' is max per-step socket share over the even\n"
      "share (1.0 = perfect). The stress rows show the figure's mechanism:\n"
      "socket-aware leaves one socket idle (imbalance ~2), load-balancing\n"
      "restores ~1 at a small remote-traffic cost.\n");
  return 0;
}
