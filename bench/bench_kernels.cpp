// Kernel-level microbenchmarks (google-benchmark + per-ISA comparison).
//
// The end-to-end figures on a one-core VM are noisy; these isolate the
// paper's kernel-level claims where they are crisp:
//   - SIMD vs scalar neighbour binning (Sec. III-C.4: "overall
//     instruction reduction of 1.3-2x"), now swept across every ISA
//     level the host + binary can reach (scalar / SSE4.2 / AVX2 /
//     AVX-512) through the runtime dispatch tables in simd/dispatch.h;
//   - atomic-free vs LOCK-prefixed VIS updates (Sec. III-A / Fig. 2:
//     atomics "behave as memory fences that lead to serialization");
//   - the rearrangement pass cost (Sec. III-B3b: 24 bytes/vertex);
//   - Chase-Lev deque ops (the work-stealing baseline's substrate).
//
// Before the google-benchmark loop runs, a fixed-rep comparison times the
// dispatchable kernels (bin_indices / append_binned / append_binned_mask /
// stream_copy) at each reachable level and writes BENCH_kernels.json.
// Acceptance (checked here, exit code 1 on failure): when AVX2 is
// reachable, bin_indices at AVX2 must beat SSE4.2 by >= 1.3x.
// Run: ./bench_kernels [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "baseline/work_stealing_deque.h"
#include "bench_common.h"
#include "core/rearrange.h"
#include "core/vis.h"
#include "gen/rmat.h"
#include "graph/adjacency_array.h"
#include "graph/bfs_result.h"
#include "model/calibrate.h"
#include "simd/binning.h"
#include "simd/dispatch.h"
#include "util/rng.h"
#include "util/timer.h"

namespace fastbfs {
namespace {

std::vector<vid_t> random_ids(std::size_t n, vid_t max_id) {
  Xoshiro256 rng(7);
  std::vector<vid_t> ids(n);
  for (auto& id : ids) id = static_cast<vid_t>(rng.next_below(max_id));
  return ids;
}

struct BinFixture {
  explicit BinFixture(unsigned n_bins, std::size_t n)
      : ids(random_ids(n, 1u << 20)),
        storage(n_bins, std::vector<svid_t>(n)),
        cursors(n_bins, 0) {
    for (auto& s : storage) ptrs.push_back(s.data());
  }
  std::vector<vid_t> ids;
  std::vector<std::vector<svid_t>> storage;
  std::vector<svid_t*> ptrs;
  std::vector<std::uint32_t> cursors;
};

/// Everything the mask-carrying (MS-BFS) kernel scatters into: per-bin
/// child/parent/mask triples.
struct MaskBinFixture {
  explicit MaskBinFixture(unsigned n_bins, std::size_t n)
      : ids(random_ids(n, 1u << 20)),
        child(n_bins, std::vector<vid_t>(n)),
        parent(n_bins, std::vector<vid_t>(n)),
        mask(n_bins, std::vector<std::uint64_t>(n)),
        cursors(n_bins, 0) {
    for (auto& s : child) child_ptrs.push_back(s.data());
    for (auto& s : parent) parent_ptrs.push_back(s.data());
    for (auto& s : mask) mask_ptrs.push_back(s.data());
  }
  std::vector<vid_t> ids;
  std::vector<std::vector<vid_t>> child;
  std::vector<std::vector<vid_t>> parent;
  std::vector<std::vector<std::uint64_t>> mask;
  std::vector<vid_t*> child_ptrs;
  std::vector<vid_t*> parent_ptrs;
  std::vector<std::uint64_t*> mask_ptrs;
  std::vector<std::uint32_t> cursors;
};

/// Highest level this process can actually execute: the host capability
/// capped by what was compiled in. kernels_for() above this would hand
/// back instructions the CPU faults on.
IsaLevel reachable_ceiling() {
  return std::min(detect_isa(), compiled_isa_ceiling());
}

// ---------------------------------------------------------------------------
// Per-ISA comparison (fixed reps, best-of) + BENCH_kernels.json.
// ---------------------------------------------------------------------------

constexpr std::size_t kCmpN = 1u << 20;  // ids per timed call
constexpr unsigned kCmpBins = 16;
constexpr unsigned kCmpShift = 16;  // ids < kCmpBins << kCmpShift
constexpr int kCmpReps = 9;

/// Medges/s of one timed call, best of kCmpReps after one untimed warmup
/// (faults pages, warms caches and the branch predictor).
template <typename Fn>
double best_meps(std::size_t n, Fn&& fn) {
  fn();
  double best_s = 0.0;
  for (int r = 0; r < kCmpReps; ++r) {
    Timer t;
    fn();
    const double s = t.seconds();
    if (best_s == 0.0 || s < best_s) best_s = s;
  }
  return static_cast<double>(n) / best_s / 1e6;
}

struct IsaRow {
  IsaLevel level = IsaLevel::kScalar;
  double bin_indices_meps = 0.0;
  double append_binned_meps = 0.0;
  double append_mask_meps = 0.0;
  double stream_copy_gbps = 0.0;
  double bin_cycles_per_edge = 0.0;  // the Sec. IV model constant
};

IsaRow measure_level(IsaLevel level) {
  const BinningKernels& kern = kernels_for(level);
  IsaRow row;
  row.level = level;

  // bin_indices is one load + one shift + one store per id, so at DRAM
  // sizes every ISA hits the same bandwidth wall. An L1-resident working
  // set swept repeatedly isolates the compute throughput the wider
  // vectors actually change (the Sec. III-C.4 instruction-count claim).
  constexpr std::size_t kIdxN = 1u << 12;  // 16 KiB in + 16 KiB out: L1
  constexpr int kIdxPasses = 256;
  const auto ids = random_ids(kIdxN, kCmpBins << kCmpShift);
  std::vector<std::uint32_t> out(kIdxN);
  row.bin_indices_meps = best_meps(kIdxN * kIdxPasses, [&] {
    for (int p = 0; p < kIdxPasses; ++p) {
      kern.bin_indices(ids.data(), kIdxN, kCmpShift, out.data());
      benchmark::DoNotOptimize(out.data());
    }
  });

  BinFixture f(kCmpBins, kCmpN);
  row.append_binned_meps = best_meps(kCmpN, [&] {
    std::fill(f.cursors.begin(), f.cursors.end(), 0);
    kern.append_binned(f.ids.data(), kCmpN, kCmpShift, f.ptrs.data(),
                       f.cursors.data());
    benchmark::DoNotOptimize(f.cursors.data());
  });

  MaskBinFixture m(kCmpBins, kCmpN);
  row.append_mask_meps = best_meps(kCmpN, [&] {
    std::fill(m.cursors.begin(), m.cursors.end(), 0);
    kern.append_binned_mask(m.ids.data(), kCmpN, kCmpShift, /*parent=*/42,
                            /*mask=*/0x5555555555555555ull,
                            m.child_ptrs.data(), m.parent_ptrs.data(),
                            m.mask_ptrs.data(), m.cursors.data());
    benchmark::DoNotOptimize(m.cursors.data());
  });

  // Large enough that the non-temporal path engages (> 1 MiB) and the
  // destination cannot live in the LLC, which is the case the streaming
  // stores exist for.
  const std::size_t copy_words = (64u << 20) / 4;
  std::vector<std::uint32_t> src(copy_words, 7), dst(copy_words);
  const double copy_meps = best_meps(copy_words, [&] {
    kern.stream_copy_u32(dst.data(), src.data(), copy_words);
    benchmark::DoNotOptimize(dst.data());
  });
  row.stream_copy_gbps = copy_meps * 1e6 * 4.0 / 1e9;

  row.bin_cycles_per_edge = model::measured_bin_cycles_per_edge(level);
  return row;
}

std::string rows_json(const std::vector<IsaRow>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bench::JsonFields f;
    f.add_str("isa", isa_name(rows[i].level))
        .add_num("bin_indices_meps", rows[i].bin_indices_meps)
        .add_num("append_binned_meps", rows[i].append_binned_meps)
        .add_num("append_binned_mask_meps", rows[i].append_mask_meps)
        .add_num("stream_copy_gbps", rows[i].stream_copy_gbps)
        .add_num("bin_cycles_per_edge", rows[i].bin_cycles_per_edge);
    if (i != 0) out += ", ";
    out += f.str();
  }
  out += "]";
  return out;
}

/// Times every reachable level, prints the comparison table, writes
/// BENCH_kernels.json. Returns the process exit code (nonzero when the
/// AVX2-vs-SSE4.2 acceptance ratio is measurable and missed).
int run_isa_comparison() {
  const IsaLevel cap = reachable_ceiling();
  std::printf(
      "== per-ISA kernel comparison (n=%zu ids, %u bins; best of %d) ==\n"
      "detected %s, compiled %s, resolved %s\n",
      kCmpN, kCmpBins, kCmpReps, isa_name(detect_isa()),
      isa_name(compiled_isa_ceiling()), isa_name(resolved_isa()));
  std::printf("%-8s %14s %16s %14s %12s %12s\n", "isa", "bin_idx Me/s",
              "append_bin Me/s", "append_mask", "copy GB/s", "cyc/edge");

  std::vector<IsaRow> rows;
  for (int l = 0; l <= static_cast<int>(cap); ++l) {
    rows.push_back(measure_level(static_cast<IsaLevel>(l)));
    const IsaRow& r = rows.back();
    std::printf("%-8s %14.1f %16.1f %14.1f %12.2f %12.3f\n",
                isa_name(r.level), r.bin_indices_meps, r.append_binned_meps,
                r.append_mask_meps, r.stream_copy_gbps,
                r.bin_cycles_per_edge);
  }

  const auto find = [&](IsaLevel l) -> const IsaRow* {
    for (const IsaRow& r : rows)
      if (r.level == l) return &r;
    return nullptr;
  };
  const IsaRow* sse = find(IsaLevel::kSse42);
  const IsaRow* avx2 = find(IsaLevel::kAvx2);
  const IsaRow* avx512 = find(IsaLevel::kAvx512);

  double ratio_avx2 = 0.0, ratio_avx512 = 0.0;
  bool pass = true;
  if (sse != nullptr && avx2 != nullptr) {
    ratio_avx2 = avx2->bin_indices_meps / sse->bin_indices_meps;
    pass = ratio_avx2 >= 1.3;
    std::printf("bin_indices avx2/sse4.2 = %.2fx (acceptance >= 1.3x: %s)\n",
                ratio_avx2, pass ? "PASS" : "FAIL");
  } else {
    std::printf("bin_indices avx2/sse4.2 not measurable on this host\n");
  }
  if (sse != nullptr && avx512 != nullptr) {
    ratio_avx512 = avx512->bin_indices_meps / sse->bin_indices_meps;
    std::printf("bin_indices avx512/sse4.2 = %.2fx\n", ratio_avx512);
  }

  bench::JsonFields config;
  config.add_uint("n_ids", kCmpN)
      .add_uint("n_bins", kCmpBins)
      .add_int("reps", kCmpReps)
      .add_str("detected_isa", isa_name(detect_isa()))
      .add_str("compiled_isa", isa_name(compiled_isa_ceiling()))
      .add_str("resolved_isa", isa_name(resolved_isa()));
  bench::JsonFields metrics;
  metrics.add_num("bin_indices_avx2_vs_sse42", ratio_avx2)
      .add_num("bin_indices_avx512_vs_sse42", ratio_avx512)
      .add_bool("acceptance_pass", pass)
      .add_raw("levels", rows_json(rows));
  if (bench::write_bench_json("BENCH_kernels.json", "kernels",
                              std::time(nullptr), config, metrics)) {
    std::printf("wrote BENCH_kernels.json\n");
  }
  return pass ? 0 : 1;
}

// ---------------------------------------------------------------------------
// google-benchmark loops.
// ---------------------------------------------------------------------------

void binning_at_level(benchmark::State& state, IsaLevel level) {
  const auto n_bins = static_cast<unsigned>(state.range(0));
  const unsigned shift = 20 - floor_log2(n_bins);
  const BinningKernels& kern = kernels_for(level);
  BinFixture f(n_bins, 1 << 16);
  for (auto _ : state) {
    std::fill(f.cursors.begin(), f.cursors.end(), 0);
    kern.append_binned(f.ids.data(), f.ids.size(), shift, f.ptrs.data(),
                       f.cursors.data());
    benchmark::DoNotOptimize(f.cursors.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ids.size()));
}

/// One BM_Binning/<isa> family per reachable level (registered at runtime:
/// the set of levels depends on the host, so static BENCHMARK() cannot
/// enumerate them).
void register_binning_benchmarks() {
  const IsaLevel cap = reachable_ceiling();
  for (int l = 0; l <= static_cast<int>(cap); ++l) {
    const auto level = static_cast<IsaLevel>(l);
    benchmark::RegisterBenchmark(
        (std::string("BM_Binning/") + isa_name(level)).c_str(),
        [level](benchmark::State& state) { binning_at_level(state, level); })
        ->Arg(2)
        ->Arg(8)
        ->Arg(64);
  }
}

void BM_VisAtomicFree(benchmark::State& state) {
  VisArray vis(1 << 20, VisArray::Kind::kBit);
  const auto ids = random_ids(1 << 16, 1 << 20);
  for (auto _ : state) {
    for (const vid_t v : ids) {
      if (!vis.test(v)) vis.set(v);
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ids.size()));
}
BENCHMARK(BM_VisAtomicFree);

void BM_VisAtomic(benchmark::State& state) {
  VisArray vis(1 << 20, VisArray::Kind::kBit);
  const auto ids = random_ids(1 << 16, 1 << 20);
  for (auto _ : state) {
    for (const vid_t v : ids) {
      benchmark::DoNotOptimize(vis.test_and_set_atomic(v));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ids.size()));
}
BENCHMARK(BM_VisAtomic);

void BM_DpProbe(benchmark::State& state) {
  // The no-VIS alternative: an 8-byte DP probe per edge.
  DepthParent dp(1 << 20);
  const auto ids = random_ids(1 << 16, 1 << 20);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const vid_t v : ids) acc += dp.visited(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ids.size()));
}
BENCHMARK(BM_DpProbe);

void BM_Rearrange(benchmark::State& state) {
  static const CsrGraph g = rmat_graph(16, 8, 3);
  static const AdjacencyArray adj(g, 2);
  CacheGeometry c;
  c.tlb_entries = 8;
  const bool streaming = state.range(0) != 0;
  Rearranger r(adj, c, streaming);
  const auto base = random_ids(1 << 16, g.n_vertices());
  std::vector<vid_t> bv, scratch;
  std::vector<std::uint32_t> hist;
  for (auto _ : state) {
    bv = base;
    r.rearrange(bv, scratch, hist);
    benchmark::DoNotOptimize(bv.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_Rearrange)->Arg(0)->Arg(1);  // 0 = plain copy, 1 = NT stores

void BM_DequePushPop(benchmark::State& state) {
  baseline::WorkStealingDeque d(1 << 16);
  for (auto _ : state) {
    for (vid_t i = 0; i < 1024; ++i) d.push(i);
    for (vid_t i = 0; i < 1024; ++i) benchmark::DoNotOptimize(d.pop());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_DequePushPop);

}  // namespace
}  // namespace fastbfs

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const int rc = fastbfs::run_isa_comparison();
  fastbfs::register_binning_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rc;
}
