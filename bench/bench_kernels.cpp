// Kernel-level microbenchmarks (google-benchmark).
//
// The end-to-end figures on a one-core VM are noisy; these isolate the
// paper's kernel-level claims where they are crisp:
//   - SIMD vs scalar neighbour binning (Sec. III-C.4: "overall
//     instruction reduction of 1.3-2x");
//   - atomic-free vs LOCK-prefixed VIS updates (Sec. III-A / Fig. 2:
//     atomics "behave as memory fences that lead to serialization");
//   - the rearrangement pass cost (Sec. III-B3b: 24 bytes/vertex);
//   - Chase-Lev deque ops (the work-stealing baseline's substrate).
// Run: ./bench_kernels [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <vector>

#include "baseline/work_stealing_deque.h"
#include "core/rearrange.h"
#include "core/vis.h"
#include "gen/rmat.h"
#include "graph/adjacency_array.h"
#include "graph/bfs_result.h"
#include "simd/binning.h"
#include "util/rng.h"

namespace fastbfs {
namespace {

std::vector<vid_t> random_ids(std::size_t n, vid_t max_id) {
  Xoshiro256 rng(7);
  std::vector<vid_t> ids(n);
  for (auto& id : ids) id = static_cast<vid_t>(rng.next_below(max_id));
  return ids;
}

struct BinFixture {
  explicit BinFixture(unsigned n_bins, std::size_t n)
      : ids(random_ids(n, 1u << 20)),
        storage(n_bins, std::vector<svid_t>(n)),
        cursors(n_bins, 0) {
    for (auto& s : storage) ptrs.push_back(s.data());
  }
  std::vector<vid_t> ids;
  std::vector<std::vector<svid_t>> storage;
  std::vector<svid_t*> ptrs;
  std::vector<std::uint32_t> cursors;
};

void BM_BinningScalar(benchmark::State& state) {
  const auto n_bins = static_cast<unsigned>(state.range(0));
  const unsigned shift = 20 - floor_log2(n_bins);
  BinFixture f(n_bins, 1 << 16);
  for (auto _ : state) {
    std::fill(f.cursors.begin(), f.cursors.end(), 0);
    append_binned_scalar(f.ids.data(), f.ids.size(), shift, f.ptrs.data(),
                         f.cursors.data());
    benchmark::DoNotOptimize(f.cursors.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ids.size()));
}
BENCHMARK(BM_BinningScalar)->Arg(2)->Arg(8)->Arg(64);

void BM_BinningSse(benchmark::State& state) {
  const auto n_bins = static_cast<unsigned>(state.range(0));
  const unsigned shift = 20 - floor_log2(n_bins);
  BinFixture f(n_bins, 1 << 16);
  for (auto _ : state) {
    std::fill(f.cursors.begin(), f.cursors.end(), 0);
    append_binned_sse(f.ids.data(), f.ids.size(), shift, f.ptrs.data(),
                      f.cursors.data());
    benchmark::DoNotOptimize(f.cursors.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.ids.size()));
}
BENCHMARK(BM_BinningSse)->Arg(2)->Arg(8)->Arg(64);

void BM_VisAtomicFree(benchmark::State& state) {
  VisArray vis(1 << 20, VisArray::Kind::kBit);
  const auto ids = random_ids(1 << 16, 1 << 20);
  for (auto _ : state) {
    for (const vid_t v : ids) {
      if (!vis.test(v)) vis.set(v);
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ids.size()));
}
BENCHMARK(BM_VisAtomicFree);

void BM_VisAtomic(benchmark::State& state) {
  VisArray vis(1 << 20, VisArray::Kind::kBit);
  const auto ids = random_ids(1 << 16, 1 << 20);
  for (auto _ : state) {
    for (const vid_t v : ids) {
      benchmark::DoNotOptimize(vis.test_and_set_atomic(v));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ids.size()));
}
BENCHMARK(BM_VisAtomic);

void BM_DpProbe(benchmark::State& state) {
  // The no-VIS alternative: an 8-byte DP probe per edge.
  DepthParent dp(1 << 20);
  const auto ids = random_ids(1 << 16, 1 << 20);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const vid_t v : ids) acc += dp.visited(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ids.size()));
}
BENCHMARK(BM_DpProbe);

void BM_Rearrange(benchmark::State& state) {
  static const CsrGraph g = rmat_graph(16, 8, 3);
  static const AdjacencyArray adj(g, 2);
  CacheGeometry c;
  c.tlb_entries = 8;
  Rearranger r(adj, c);
  const auto base = random_ids(1 << 16, g.n_vertices());
  std::vector<vid_t> bv, scratch;
  std::vector<std::uint32_t> hist;
  for (auto _ : state) {
    bv = base;
    r.rearrange(bv, scratch, hist);
    benchmark::DoNotOptimize(bv.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_Rearrange);

void BM_DequePushPop(benchmark::State& state) {
  baseline::WorkStealingDeque d(1 << 16);
  for (auto _ : state) {
    for (vid_t i = 0; i < 1024; ++i) d.push(i);
    for (vid_t i = 0; i < 1024; ++i) benchmark::DoNotOptimize(d.pop());
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_DequePushPop);

}  // namespace
}  // namespace fastbfs

BENCHMARK_MAIN();
