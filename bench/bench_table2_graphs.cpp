// Table II: real-world graph characteristics.
//
// Builds the synthetic proxy for each of the ten evaluation graphs and
// prints the paper's published |V| / |E| / depth beside the proxy's
// (scaled) values. Layered proxies must match the published depth exactly;
// R-MAT proxies match the depth class (small-world).
#include <cstdio>

#include "bench_common.h"
#include "gen/proxies.h"
#include "graph/stats.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header("Table II: graph characteristics (synthetic proxies)",
                   "ten graphs, 2.4M-256M vertices, degrees 2.4-74.4, "
                   "depths 6-6230");

  TextTable t({"graph", "category", "paper |V|", "paper |E|", "paper depth",
               "proxy |V|", "proxy |E| (arcs/2)", "proxy depth", "div"});
  for (const ProxySpec& spec : table2_specs()) {
    // Memory guard: cap each proxy at ~2M vertices regardless of --div.
    unsigned div = env.div;
    while (spec.paper_vertices / div > (2u << 20)) div *= 2;
    const CsrGraph g = make_proxy(spec, div, env.seed);
    // Layered proxies pin the depth from vertex 0; small-world proxies
    // probe from a sampled root like the paper.
    const vid_t root = spec.recipe == ProxyRecipe::kLayered
                           ? 0
                           : pick_nonisolated_root(g, env.seed);
    const unsigned depth = bfs_depth_from(g, root);
    t.add_row({spec.name, spec.category,
               TextTable::num(std::uint64_t{spec.paper_vertices}),
               TextTable::num(std::uint64_t{spec.paper_edges}),
               TextTable::num(std::uint64_t{spec.paper_depth}),
               TextTable::num(std::uint64_t{g.n_vertices()}),
               TextTable::num(std::uint64_t{g.n_edges() / 2}),
               TextTable::num(std::uint64_t{depth}),
               TextTable::num(std::uint64_t{div})});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\nproxies preserve the paper's depth (layered recipes: exactly; "
      "R-MAT recipes: same class)\nand average degree; |V|,|E| scale by "
      "div. See DESIGN.md for the substitution rationale.\n");
  return 0;
}
