// Multi-source batch serving: sequential run_into vs bit-parallel MS-BFS
// waves (core/ms_bfs.h), the tentpole claim of DESIGN.md §5e.
//
// Claim under test: answering a 64-key batch through ms64 waves yields at
// least 2x the harmonic-mean batch TEPS of answering the same keys one at
// a time, on RMAT ef-16 — the amortization of shared edge sweeps across
// concurrent queries. Both runners sample identical keys (same seed), are
// warmed first (the steady-state contract makes warm the serving regime),
// and the best-of-N batch is reported to shed scheduler noise.
//
// Emits BENCH_msbfs.json next to the working directory for CI trending.
// The acceptance configuration is RMAT scale-18 ef-16, K=64: run with
// --div=1 (or --scale=paper) to measure it unscaled.
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gen/rmat.h"
#include "util/timer.h"

namespace {

using namespace fastbfs;

struct BatchSample {
  double harmonic_teps = 0.0;
  double seconds = 0.0;  // wall time of the whole batch
  unsigned runs = 0;
  unsigned validated = 0;
  unsigned waves = 0;
};

/// Warm-up + env.runs measured batches; keeps the best harmonic TEPS.
BatchSample measure_batch(BfsRunner& runner, const CsrGraph& g, unsigned k,
                          std::uint64_t seed, unsigned reps) {
  BatchResult out;
  runner.run_batch_into(g, k, seed, out, /*validate=*/true);  // warm-up
  BatchSample best;
  for (unsigned i = 0; i < reps; ++i) {
    Timer t;
    runner.run_batch_into(g, k, seed, out, /*validate=*/true);
    const double secs = t.seconds();
    if (out.harmonic_teps > best.harmonic_teps) {
      best.harmonic_teps = out.harmonic_teps;
      best.seconds = secs;
      best.runs = out.runs;
      best.validated = out.validated;
      best.waves = out.waves;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header(
      "Multi-source batch serving: sequential vs bit-parallel ms64 waves",
      "acceptance: RMAT ef-16, K=64 -> ms64 harmonic TEPS >= 2x sequential");

  const unsigned scale =
      floor_log2(ceil_pow2(env.scaled_vertices(1u << 18)));
  const CsrGraph rmat = rmat_graph(scale, 16, env.seed);
  const unsigned reps = std::max(env.runs, 2u);

  BfsOptions seq_opts = env.engine_options();
  seq_opts.batch_mode = BatchMode::kSequential;
  BfsOptions ms_opts = env.engine_options();
  ms_opts.batch_mode = BatchMode::kMs64;
  BfsRunner seq_runner(rmat, seq_opts);
  BfsRunner ms_runner(rmat, ms_opts);

  struct Row {
    unsigned k;
    BatchSample seq;
    BatchSample ms;
  };
  std::vector<Row> rows;
  TextTable t({"K", "mode", "harm MTEPS", "vs seq", "batch ms", "valid",
               "waves"});
  for (const unsigned k : {8u, 64u}) {
    Row row{k, measure_batch(seq_runner, rmat, k, env.seed, reps),
            measure_batch(ms_runner, rmat, k, env.seed, reps)};
    rows.push_back(row);
    const double ratio = row.seq.harmonic_teps > 0.0
                             ? row.ms.harmonic_teps / row.seq.harmonic_teps
                             : 0.0;
    char valid[16];
    std::snprintf(valid, sizeof valid, "%u/%u", row.seq.validated,
                  row.seq.runs);
    t.add_row({TextTable::num(std::uint64_t{k}), "seq",
               TextTable::num(row.seq.harmonic_teps / 1e6, 1), "1.00",
               TextTable::num(row.seq.seconds * 1e3, 1), valid, "0"});
    std::snprintf(valid, sizeof valid, "%u/%u", row.ms.validated,
                  row.ms.runs);
    t.add_row({TextTable::num(std::uint64_t{k}), "ms64",
               TextTable::num(row.ms.harmonic_teps / 1e6, 1),
               TextTable::num(ratio, 2),
               TextTable::num(row.ms.seconds * 1e3, 1), valid,
               TextTable::num(std::uint64_t{row.ms.waves})});
  }
  std::fputs(t.to_string().c_str(), stdout);

  const Row& k64 = rows.back();
  const double speedup = k64.seq.harmonic_teps > 0.0
                             ? k64.ms.harmonic_teps / k64.seq.harmonic_teps
                             : 0.0;
  const MsWaveStats& ws = ms_runner.ms_engine()->last_wave_stats();
  std::printf(
      "\nlast K=64 wave: %u levels, %llu shared edge scans, %.1f MiB "
      "engine workspace\n",
      ws.levels, static_cast<unsigned long long>(ws.edges_scanned),
      ms_runner.workspace_bytes() / 1048576.0);
  const bool pass = speedup >= 2.0;
  std::printf(
      "acceptance (RMAT-%u ef-16, K=64 ms64/seq harmonic TEPS >= 2x): "
      "%.2fx  [%s]\n",
      scale, speedup, pass ? "PASS" : "FAIL");

  JsonFields config;
  config.add_str("graph", "rmat")
      .add_uint("scale", scale)
      .add_int("edge_factor", 16)
      .add_uint("threads", env.threads)
      .add_uint("sockets", env.sockets);
  std::string batches = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    JsonFields b;
    b.add_uint("k", r.k)
        .add_num("seq_harmonic_teps", r.seq.harmonic_teps)
        .add_num("ms64_harmonic_teps", r.ms.harmonic_teps)
        .add_num("seq_batch_seconds", r.seq.seconds)
        .add_num("ms64_batch_seconds", r.ms.seconds)
        .add_uint("ms64_waves", r.ms.waves)
        .add_uint("seq_validated", r.seq.validated)
        .add_uint("ms64_validated", r.ms.validated)
        .add_uint("runs", r.seq.runs);
    if (i > 0) batches += ", ";
    batches += b.str();
  }
  batches += "]";
  JsonFields metrics;
  metrics.add_num("acceptance_speedup_k64", speedup)
      .add_bool("acceptance_pass", pass)
      .add_raw("batches", batches);
  if (write_bench_json("BENCH_msbfs.json", "msbfs", std::time(nullptr),
                       config, metrics)) {
    std::printf("wrote BENCH_msbfs.json\n");
  }
  return pass ? 0 : 1;
}
