// Figure 4: relative performance of VIS representations on uniformly
// random graphs of growing size.
//
// Five schemes, exactly the figure's bars:
//   no-VIS        direct DP probe per edge,
//   A. VIS        atomic (LOCK fetch_or) bit array,
//   A.F. byte     atomic-free byte per vertex,
//   A.F. bit      atomic-free bit per vertex,
//   A.F. part.    atomic-free partitioned bits (the paper's scheme).
// The LLC budget is scaled with the graphs (BenchEnv::scaled_llc_bytes) so
// each paper size keeps its |VIS|-vs-cache relationship: the 2M point fits
// a byte array in "LLC", the 256M point does not even fit the bit array,
// forcing N_VIS > 1 exactly as in the paper.
//
// Paper result: byte 1.4-2x over no-VIS at 8M; bit beats byte everywhere;
// partitioned adds ~1.3x at 256M; atomic is ~1.1x at best over no-VIS.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gen/uniform.h"
#include "graph/adjacency_array.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header(
      "Figure 4: VIS array representations on Uniformly Random graphs",
      "relative perf vs no-VIS baseline; best scheme wins by 1.7-2.7x once "
      "DP spills the LLC");

  const std::uint64_t paper_sizes[] = {2u << 20, 8u << 20, 64u << 20,
                                       256u << 20};
  const unsigned degrees[] = {8, 32};

  TextTable t({"|V| (paper)", "deg", "N_VIS", "no-VIS", "atomic",
               "AF byte", "AF bit", "AF part.", "best/no-VIS",
               "paper best/no-VIS"});

  for (const std::uint64_t paper_v : paper_sizes) {
    for (const unsigned deg : degrees) {
      const vid_t n = env.scaled_vertices(paper_v);
      // Bound the edge count so the largest sweep point stays tractable.
      if (static_cast<std::uint64_t>(n) * deg > (48u << 20)) continue;
      const CsrGraph g = uniform_graph(n, deg, env.seed + paper_v + deg);
      const AdjacencyArray adj(g, env.sockets);

      auto run_mode = [&](VisMode mode) {
        BfsOptions o = env.engine_options();
        o.vis_mode = mode;
        return measure_two_phase(adj, o, env.runs, env.seed).mteps;
      };
      const double none = run_mode(VisMode::kNone);
      const double atomic = run_mode(VisMode::kAtomicBit);
      const double af_byte = run_mode(VisMode::kByte);
      const double af_bit = run_mode(VisMode::kBit);
      const double af_part = run_mode(VisMode::kPartitionedBit);

      BfsOptions part_opts = env.engine_options();
      part_opts.vis_mode = VisMode::kPartitionedBit;
      TwoPhaseBfs probe(adj, part_opts);

      const double base = none > 0 ? none : 1.0;
      const double best =
          std::max({none, atomic, af_byte, af_bit, af_part});
      t.add_row({TextTable::num(std::uint64_t{paper_v}),
                 TextTable::num(std::uint64_t{deg}),
                 TextTable::num(std::uint64_t{probe.n_vis_partitions()}),
                 "1.00", TextTable::num(atomic / base, 2),
                 TextTable::num(af_byte / base, 2),
                 TextTable::num(af_bit / base, 2),
                 TextTable::num(af_part / base, 2),
                 TextTable::num(best / base, 2),
                 paper_v >= (64u << 20) ? "1.7-2.7" : "1.4-2.0"});
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\ncolumns are MTEPS relative to the no-VIS scheme (row-wise);\n"
      "N_VIS > 1 on the largest rows shows the partitioned path engaging.\n");
  return 0;
}
