// Figure 7: MTEPS on the real-world graphs (via Table II proxies) versus
// the previous approaches the paper re-ran on its machine.
//
// Paper result: 2-2.8x over Leiserson et al. on the UF sparse graphs, up
// to 13.2x on the USA road networks, and model-matching performance on
// the social networks and Toy++. The baselines we can rebuild faithfully
// are the serial Fig. 1 code, the atomic-bitmap scheme (Agarwal et al.)
// and the statically-partitioned scheme (Xia/Prasanna class, the ~10.5x
// claim); Cilk work-stealing (Leiserson) is approximated by the atomic
// scheme, its closest dynamic-load-balancing relative here.
#include <cstdio>

#include "baseline/static_partition_bfs.h"
#include "baseline/work_stealing_bfs.h"
#include "bench_common.h"
#include "gen/proxies.h"
#include "graph/adjacency_array.h"
#include "graph/stats.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header(
      "Figure 7: real-world graphs (synthetic proxies) vs previous "
      "approaches",
      "2-2.8x vs Leiserson (UF graphs); up to 13.2x on USA roads; ~10.5x "
      "vs static partitioning on UR");

  TextTable t({"graph", "ours MTEPS", "atomic MTEPS", "steal MTEPS",
               "static MTEPS", "ours/atomic", "ours/static",
               "paper speedup"});

  for (const ProxySpec& spec : table2_specs()) {
    unsigned div = env.div;
    while (spec.paper_vertices / div > (1u << 20)) div *= 2;
    const CsrGraph g = make_proxy(spec, div, env.seed);
    const AdjacencyArray adj(g, env.sockets);

    const Measured ours =
        measure_two_phase(adj, env.engine_options(), env.runs, env.seed);

    baseline::SinglePhaseOptions aopts;
    aopts.n_threads = env.threads;
    const Measured atomic = measure_single_phase(g, aopts, env.runs, env.seed);

    // Work-stealing (the Leiserson-class dynamically balanced scheduler).
    const vid_t ws_root = spec.recipe == ProxyRecipe::kLayered
                              ? 0
                              : pick_nonisolated_root(g, env.seed);
    const BfsResult ws =
        baseline::work_stealing_bfs(g, ws_root, env.threads);
    const double steal_mteps = mteps(ws.edges_traversed, ws.seconds);

    // Static partitioning scans every edge per thread — cap its cost.
    double static_mteps = 0.0;
    if (g.n_edges() < (8u << 20)) {
      const vid_t root = spec.recipe == ProxyRecipe::kLayered
                             ? 0
                             : pick_nonisolated_root(g, env.seed);
      const BfsResult r =
          baseline::static_partition_bfs(g, root, env.threads);
      static_mteps = mteps(r.edges_traversed, r.seconds);
    }

    const char* paper_claim =
        spec.category == "UF-sparse"  ? "2-2.8x vs Leiserson"
        : spec.category == "road"     ? "up to 13.2x"
        : spec.category == "social"   ? "(first published numbers)"
                                      : "matches Red-Sky 512 procs";
    t.add_row({spec.name, TextTable::num(ours.mteps, 1),
               TextTable::num(atomic.mteps, 1),
               TextTable::num(steal_mteps, 1),
               static_mteps > 0 ? TextTable::num(static_mteps, 1) : "-",
               TextTable::num(
                   atomic.mteps > 0 ? ours.mteps / atomic.mteps : 0.0, 2),
               static_mteps > 0
                   ? TextTable::num(ours.mteps / static_mteps, 2)
                   : "-",
               paper_claim});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\nGraph500 convention: halve the 'ours MTEPS' column to compare "
      "with graph500.org listings (the paper does the same for Toy++).\n");
  return 0;
}
