// Figure 6: our cache-friendly load-balanced approach versus the previous
// best reported numbers (Agarwal et al.-style atomic-bitmap BFS) on UR and
// R-MAT graphs of varying size and degree.
//
// Paper result: 1.5-3x over the atomic baseline on the same platform, and
// near-linear socket scaling (1.98x UR / 1.93x RMAT on 2 sockets).
// We reproduce the scheme-vs-scheme ratio and the 1->2 logical-socket
// scaling of the engine.
#include <cstdio>

#include "bench_common.h"
#include "gen/rmat.h"
#include "gen/uniform.h"
#include "graph/adjacency_array.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header(
      "Figure 6: our approach vs previous best (atomic-bitmap baseline)",
      "1.5-3x over Agarwal et al. on the same platform; ~1.95x socket "
      "scaling");

  const std::uint64_t paper_sizes[] = {4u << 20, 16u << 20, 64u << 20};
  const unsigned degrees[] = {8, 16, 32};

  TextTable t({"graph", "|V| (paper)", "deg", "ours MTEPS", "atomic MTEPS",
               "serial MTEPS", "ours/atomic", "paper"});

  for (const bool is_rmat : {false, true}) {
    for (const std::uint64_t paper_v : paper_sizes) {
      for (const unsigned deg : degrees) {
        const vid_t n = env.scaled_vertices(paper_v);
        if (static_cast<std::uint64_t>(n) * deg > (40u << 20)) continue;
        const unsigned scale = floor_log2(ceil_pow2(n));
        const CsrGraph g =
            is_rmat ? rmat_graph(scale, deg / 2, env.seed + paper_v + deg)
                    : uniform_graph(n, deg, env.seed + paper_v + deg);
        const AdjacencyArray adj(g, env.sockets);

        const Measured ours =
            measure_two_phase(adj, env.engine_options(), env.runs, env.seed);
        baseline::SinglePhaseOptions atomic_opts;
        atomic_opts.n_threads = env.threads;
        atomic_opts.vis_mode = VisMode::kAtomicBit;
        const Measured atomic =
            measure_single_phase(g, atomic_opts, env.runs, env.seed);
        const Measured serial = measure_serial(g, 1, env.seed);

        t.add_row({is_rmat ? "RMAT" : "UR",
                   TextTable::num(std::uint64_t{paper_v}),
                   TextTable::num(std::uint64_t{deg}),
                   TextTable::num(ours.mteps, 1),
                   TextTable::num(atomic.mteps, 1),
                   TextTable::num(serial.mteps, 1),
                   TextTable::num(atomic.mteps > 0 ? ours.mteps / atomic.mteps
                                                   : 0.0,
                                  2),
                   "1.5-3x"});
      }
    }
  }
  std::fputs(t.to_string().c_str(), stdout);

  // Socket scaling: same engine, 1 vs 2 logical sockets. On one physical
  // core this measures the *work distribution* overhead rather than real
  // bandwidth scaling; the paper's 1.93-1.98x needs two physical sockets.
  {
    const vid_t n = env.scaled_vertices(16u << 20);
    const CsrGraph g = rmat_graph(floor_log2(ceil_pow2(n)), 8, env.seed);
    const AdjacencyArray adj1(g, 1);
    const AdjacencyArray adj2(g, 2);
    BfsOptions o1 = env.engine_options();
    o1.n_sockets = 1;
    BfsOptions o2 = env.engine_options();
    o2.n_sockets = 2;
    const Measured m1 = measure_two_phase(adj1, o1, env.runs, env.seed);
    const Measured m2 = measure_two_phase(adj2, o2, env.runs, env.seed);
    std::printf(
        "\nsocket scaling (RMAT deg 16): 1-socket %.1f MTEPS, 2-socket "
        "%.1f MTEPS, ratio %.2f (paper: 1.93x on physical sockets; on one "
        "physical core expect ~1.0 — the engine must not get *slower*)\n",
        m1.mteps, m2.mteps, m1.mteps > 0 ? m2.mteps / m1.mteps : 0.0);
  }
  return 0;
}
