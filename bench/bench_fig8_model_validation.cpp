// Figure 8: cycles per traversed edge in Phase-I / Phase-II / Rearrange,
// measured versus the analytical model, on R-MAT and UR sweeps.
//
// The paper's 5-10% absolute match holds on its calibrated Nehalem; on
// this host we present three comparisons:
//   (a) the model evaluated with Table I constants and the *measured*
//       graph quantities (|V'|, |E'|, D, alpha_Adj) — the paper's numbers;
//   (b) measured wall-clock converted to cycles/edge with the host clock;
//   (c) the phase *split* (fractions of time in Phase-I/II/Rearrange),
//       which is platform-robust and is the shape the figure shows.
#include <cstdio>

#include "bench_common.h"
#include "gen/rmat.h"
#include "gen/uniform.h"
#include "graph/adjacency_array.h"
#include "model/model.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header(
      "Figure 8: per-phase cycles/edge, measured vs analytical model",
      "model matches measurement within 5-10% on the calibrated platform");

  const double freq = host_freq_ghz();
  // --calibrate replaces Table I's constants with bandwidths measured on
  // this host, making the absolute cycles/edge columns comparable to the
  // measured column (the paper's 5-10% experiment, transplanted).
  const bool calibrate = args.get_bool("calibrate", false);
  if (calibrate) std::printf("calibrating model to host bandwidths...\n");
  const auto params =
      calibrate ? calibrated_host_params() : model::nehalem_ep();

  TextTable t({"graph", "|V| (paper)", "deg", "model P1", "model P2",
               "model R", "model total", "meas c/e", "P1% m/M", "P2% m/M",
               "R% m/M"});

  const std::uint64_t paper_sizes[] = {8u << 20, 32u << 20};
  const unsigned degrees[] = {8, 16};

  for (const bool is_rmat : {true, false}) {
    for (const std::uint64_t paper_v : paper_sizes) {
      for (const unsigned deg : degrees) {
        const vid_t n = env.scaled_vertices(paper_v);
        if (static_cast<std::uint64_t>(n) * deg > (40u << 20)) continue;
        const unsigned scale = floor_log2(ceil_pow2(n));
        const CsrGraph g =
            is_rmat ? rmat_graph(scale, deg / 2, env.seed + deg)
                    : uniform_graph(n, deg, env.seed + deg);
        const AdjacencyArray adj(g, env.sockets);
        BfsOptions o = env.engine_options();
        TwoPhaseBfs engine(adj, o);
        // One calibration run to extract the model inputs.
        vid_t root = 0;
        while (root < g.n_vertices() && g.degree(root) == 0) ++root;
        const BfsResult r = engine.run(root);
        const RunStats& s = engine.last_run_stats();

        model::ModelInput in;
        in.n_vertices = g.n_vertices();
        in.v_assigned = r.vertices_visited;
        in.e_traversed = r.edges_traversed;
        in.depth = r.depth_reached;
        in.n_pbv = engine.n_pbv_bins();
        in.n_vis = engine.n_vis_partitions();
        in.vis_bytes = static_cast<double>(g.n_vertices()) / 8.0;
        // A calibrated (single-physical-socket) model uses the
        // single-socket equation; the Nehalem model composes sockets.
        const auto pred = !calibrate && env.sockets > 1
                              ? model::predict_multi_socket(
                                    in, params, env.sockets, s.alpha_adj)
                              : model::predict_single_socket(in, params);

        const Measured m = measure_two_phase(adj, o, env.runs, env.seed);
        const double meas_cpe =
            m.sec_per_edge * freq * 1e9;  // host cycles per edge

        const double mt = pred.total();
        auto pct = [](double x) { return TextTable::num(x * 100.0, 0); };
        t.add_row(
            {is_rmat ? "RMAT" : "UR", TextTable::num(std::uint64_t{paper_v}),
             TextTable::num(std::uint64_t{deg}),
             TextTable::num(pred.phase1, 2), TextTable::num(pred.phase2(), 2),
             TextTable::num(pred.rearrange, 2), TextTable::num(mt, 2),
             TextTable::num(meas_cpe, 2),
             pct(m.phase1_frac) + "/" + pct(mt > 0 ? pred.phase1 / mt : 0),
             pct(m.phase2_frac) + "/" + pct(mt > 0 ? pred.phase2() / mt : 0),
             pct(m.rearrange_frac) + "/" +
                 pct(mt > 0 ? pred.rearrange / mt : 0)});
      }
    }
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\n'model *' columns: cycles/edge from Sec. IV with Table I constants\n"
      "and this run's measured |V'|,|E'|,D,alpha_Adj. 'meas c/e' converts\n"
      "wall time with the host clock (%.2f GHz). 'X%% m/M' compares the\n"
      "measured vs model share of time per phase — the platform-portable\n"
      "shape of Fig. 8. The 5-10%% absolute claim is reproduced in\n"
      "tests/test_model.cpp against the paper's own worked example.\n",
      freq);
  return 0;
}
