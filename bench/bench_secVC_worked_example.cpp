// Section V-C / Appendix D: the worked model example, end to end.
//
// Prints every intermediate the paper prints for the RMAT |V|=8M, degree-8
// example — bytes/edge per phase, single-socket cycles/edge, the Eqn IV.3
// bandwidth gain at alpha_Adj=0.6, and the final dual-socket 3.47
// cycles/edge == 844 M edges/s — then runs the scaled equivalent graph and
// reports the measured graph quantities (rho', |V'|/|V|, alpha_Adj) that
// feed the model, which *are* platform-independent and must match.
#include <cstdio>

#include "bench_common.h"
#include "gen/rmat.h"
#include "graph/adjacency_array.h"
#include "model/model.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header("Sec. V-C / App. D: the worked model example",
                   "RMAT |V|=8M deg 8: 3.47 cycles/edge == 844 MTEPS on 2 "
                   "sockets, measured 820 (3% off)");

  const auto p = model::nehalem_ep();
  model::ModelInput in;
  in.n_vertices = 8ull << 20;
  in.v_assigned = 4ull << 20;
  in.e_traversed = static_cast<std::uint64_t>(15.3 * (4ull << 20));
  in.depth = 6;
  in.n_pbv = 2;
  in.n_vis = 1;
  in.vis_bytes = (8ull << 20) / 8.0;

  const auto traffic = model::predict_traffic(in, p);
  const auto single = model::predict_single_socket(in, p);
  const auto dual = model::predict_multi_socket(in, p, 2, 0.6);

  TextTable t({"quantity", "paper", "model (this code)"});
  t.add_row({"Phase-I DDR bytes/edge (IV.1a)", "21.7",
             TextTable::num(traffic.phase1_ddr, 2)});
  t.add_row({"Phase-II DDR bytes/edge (IV.1b)", "13.54",
             TextTable::num(traffic.phase2_ddr, 2)});
  t.add_row({"Phase-II LLC bytes/edge (IV.1c)", "51.1",
             TextTable::num(traffic.phase2_llc, 2)});
  t.add_row({"Rearrange bytes/edge (IV.1d)", "1.6",
             TextTable::num(traffic.rearrange_ddr, 2)});
  t.add_row({"1-socket Phase-I cycles/edge", "2.88",
             TextTable::num(single.phase1, 2)});
  t.add_row({"1-socket Phase-II cycles/edge", "3.80 (=1.8+0.75*2.67)",
             TextTable::num(single.phase2(), 2)});
  t.add_row({"1-socket total cycles/edge", "6.48 (paper text)",
             TextTable::num(single.total(), 2) +
                 " (paper's own components sum to 6.89)"});
  t.add_row({"IV.3 gain at alpha=0.6, N_S=2", "1.7x",
             TextTable::num(
                 model::effective_bandwidth_balanced(0.6, 2, p) / p.b_mem,
                 2) + "x"});
  t.add_row({"2-socket Phase-II cycles/edge", "1.75",
             TextTable::num(dual.phase2(), 2)});
  t.add_row({"2-socket total cycles/edge", "3.47",
             TextTable::num(dual.total(), 2)});
  t.add_row({"2-socket MTEPS", "844 (measured 820)",
             TextTable::num(dual.mteps(p.freq_ghz), 0)});
  // Sec. V-B: "Our model further predicts that we will scale by another
  // 1.8x on a 4-socket Nehalem-EX system."
  const auto quad = model::predict_multi_socket(in, p, 4, 0.6);
  t.add_row({"4-socket projected scaling vs 2-socket", "1.8x",
             TextTable::num(dual.total() / quad.total(), 2) + "x"});
  std::fputs(t.to_string().c_str(), stdout);

  // The scaled equivalent run: graph-shape quantities must reproduce.
  const vid_t n = env.scaled_vertices(8u << 20);
  const unsigned scale = floor_log2(ceil_pow2(n));
  const CsrGraph g = rmat_graph(scale, 4, env.seed);  // deg 8 symmetrized
  const AdjacencyArray adj(g, env.sockets);
  BfsOptions o = env.engine_options();
  TwoPhaseBfs engine(adj, o);
  vid_t root = 0;
  while (root < g.n_vertices() && g.degree(root) == 0) ++root;
  const BfsResult r = engine.run(root);
  const RunStats& s = engine.last_run_stats();
  const double rho = r.vertices_visited > 0
                         ? static_cast<double>(r.edges_traversed) /
                               static_cast<double>(r.vertices_visited)
                         : 0.0;

  std::printf("\nscaled RMAT run (|V|=%u = 8M/div, edgefactor 4):\n",
              g.n_vertices());
  TextTable t2({"graph quantity", "paper (8M graph)", "measured (scaled)"});
  t2.add_row({"|V'| / |V| (reachable fraction)", "0.50",
              TextTable::num(static_cast<double>(r.vertices_visited) /
                                 g.n_vertices(),
                             2)});
  t2.add_row({"rho' (avg degree of assigned)", "15.3",
              TextTable::num(rho, 1)});
  t2.add_row({"depth D", "6", TextTable::num(std::uint64_t{r.depth_reached})});
  t2.add_row({"alpha_Adj", "0.6", TextTable::num(s.alpha_adj, 2)});
  std::fputs(t2.to_string().c_str(), stdout);

  // The conclusion's promised use of the model: which platform resource
  // would speed this traversal up the most (speedup from doubling each).
  const auto bn = model::analyze_bottlenecks(in, p);
  std::printf(
      "\nbottleneck analysis (speedup if the resource were doubled):\n"
      "  DDR bandwidth        %.2fx\n"
      "  LLC->L2 read BW      %.2fx\n"
      "  L2->LLC write BW     %.2fx\n"
      "  L2 capacity          %.2fx\n"
      "  dominant resource:   %s (the paper's thesis: BFS at this scale\n"
      "  is a bandwidth problem once latency is hidden)\n",
      bn.ddr_bandwidth, bn.llc_read_bandwidth, bn.llc_write_bandwidth,
      bn.l2_capacity, bn.dominant());
  return 0;
}
