// Autotuner acceptance (DESIGN.md §5j).
//
// The claim the planner has to earn: one shared cost model, fed nothing
// but graph statistics, picks a configuration that is never meaningfully
// worse than the best hand-picked fixed configuration on any graph — and
// much better than the worst one, which is what a fixed fleet-wide config
// degenerates to on the graph it fits worst. Corpus: an R-MAT social
// proxy, a grid, an adversarial deep path, and a Table II layered
// real-world proxy — shapes that want *different* knobs (direction,
// N_VIS, rearrangement), so no single fixed row can win everywhere.
//
// Gates (--check, enforced only when the host has >= --threads hardware
// threads, the bench_apps convention):
//   per graph:  tuned MTEPS >= 0.97x the best fixed config on that graph
//   corpus:     tuned harmonic-mean MTEPS >= 1.3x the worst fixed
//               config's harmonic mean
// Emits BENCH_autotune.json.
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "gen/adversarial.h"
#include "gen/grid.h"
#include "gen/proxies.h"
#include "gen/rmat.h"
#include "platform/cache_info.h"
#include "tune/planner.h"
#include "util/table.h"

namespace {

using namespace fastbfs;

struct FixedConfig {
  std::string name;
  std::function<void(BfsOptions&)> mutate;
};

struct GraphCase {
  std::string name;
  CsrGraph g;
};

double hmean(const std::vector<double>& xs) {
  double inv = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    inv += 1.0 / x;
  }
  return inv > 0.0 ? static_cast<double>(xs.size()) / inv : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  const BenchEnv env = BenchEnv::from_cli(args);
  const bool check = args.get_bool("check", false);
  env.print_header(
      "Autotuner: planned config vs fixed configs across a corpus",
      "beyond the paper: Sec. IV model as a planner; gates: tuned >= "
      "0.97x best fixed per graph, >= 1.3x worst fixed harmonic mean");

  // --- Corpus -----------------------------------------------------------
  const vid_t n = env.scaled_vertices(1u << 20);
  const unsigned scale = floor_log2(ceil_pow2(n));
  const vid_t side = vid_t{1} << (scale / 2);
  std::vector<GraphCase> graphs;
  graphs.push_back({"rmat", rmat_graph(scale, 16, env.seed)});
  graphs.push_back({"grid", grid_graph(side, side, 1.0, env.seed)});
  graphs.push_back({"deep-path", deep_path_graph(n / 2, 2)});
  for (const ProxySpec& spec : table2_specs()) {
    if (spec.recipe == ProxyRecipe::kLayered) {
      graphs.push_back({"proxy-" + spec.name,
                        make_proxy(spec, env.div, env.seed)});
      break;  // one layered real-world proxy is enough corpus diversity
    }
  }

  // --- Competitors ------------------------------------------------------
  // Reasonable fixed configurations an operator might pick fleet-wide;
  // each is the right call somewhere in the corpus and wrong elsewhere.
  const std::vector<FixedConfig> fixed = {
      {"td-default", [](BfsOptions&) {}},
      {"auto-dir",
       [](BfsOptions& o) { o.direction = DirectionMode::kAuto; }},
      {"forced-bu",
       [](BfsOptions& o) { o.direction = DirectionMode::kBottomUp; }},
      {"no-vis", [](BfsOptions& o) { o.vis_mode = VisMode::kNone; }},
      {"no-rearrange", [](BfsOptions& o) { o.rearrange = false; }},
  };

  // One calibration for everything the planner scores (the shared-model
  // contract: same params drive `fastbfs tune`, --tune and this bench).
  const model::PlatformParams params = calibrated_host_params();

  BfsOptions base;
  base.n_threads = env.threads;
  base.n_sockets = env.sockets;
  base.cache = host_cache_geometry();

  TextTable table({"graph", "config", "MTEPS", "vs best fixed"});
  std::vector<std::vector<double>> fixed_mteps(
      fixed.size());                   // [config][graph]
  std::vector<double> tuned_mteps;     // [graph]
  std::vector<double> tuned_ratio;     // tuned / best fixed, per graph
  std::vector<std::string> plan_lines;
  JsonFields metrics;

  for (const GraphCase& gc : graphs) {
    const AdjacencyArray adj(gc.g, env.sockets);

    double best_fixed = 0.0;
    std::vector<double> per_config(fixed.size(), 0.0);
    for (std::size_t c = 0; c < fixed.size(); ++c) {
      BfsOptions opts = base;
      fixed[c].mutate(opts);
      const Measured m =
          measure_two_phase(adj, opts, env.runs, env.seed);
      per_config[c] = m.mteps;
      fixed_mteps[c].push_back(m.mteps);
      best_fixed = std::max(best_fixed, m.mteps);
    }

    const tune::GraphProfile prof = tune::profile_graph(gc.g, env.seed);
    tune::PlannerConfig pc;
    pc.n_sockets = env.sockets;
    pc.max_threads = env.threads;
    pc.llc_bytes = base.effective_llc_bytes();
    const tune::TunedPlan plan = tune::plan_traversal(prof, params, pc);
    BfsOptions tuned_opts = base;
    plan.apply(tuned_opts);
    const Measured tuned =
        measure_two_phase(adj, tuned_opts, env.runs, env.seed);
    tuned_mteps.push_back(tuned.mteps);
    const double ratio = best_fixed > 0.0 ? tuned.mteps / best_fixed : 0.0;
    tuned_ratio.push_back(ratio);

    char plan_line[128];
    std::snprintf(plan_line, sizeof(plan_line),
                  "thr=%u dir=%s n_vis=%u rearr=%d",
                  plan.chosen.n_threads,
                  plan.chosen.direction == DirectionMode::kAuto ? "auto"
                                                                : "td",
                  plan.chosen.n_vis, plan.chosen.rearrange ? 1 : 0);
    plan_lines.push_back(plan_line);

    for (std::size_t c = 0; c < fixed.size(); ++c) {
      table.add_row({gc.name, fixed[c].name,
                     TextTable::num(per_config[c], 1),
                     TextTable::num(best_fixed > 0.0
                                        ? per_config[c] / best_fixed
                                        : 0.0,
                                    2)});
      metrics.add_num(gc.name + "_" + fixed[c].name + "_mteps",
                      per_config[c]);
    }
    table.add_row({gc.name, std::string("tuned [") + plan_line + "]",
                   TextTable::num(tuned.mteps, 1),
                   TextTable::num(ratio, 2)});
    metrics.add_num(gc.name + "_tuned_mteps", tuned.mteps)
        .add_num(gc.name + "_tuned_vs_best_fixed", ratio)
        .add_str(gc.name + "_plan", plan_line);
  }
  std::fputs(table.to_string().c_str(), stdout);

  // --- Gates ------------------------------------------------------------
  const double tuned_hmean = hmean(tuned_mteps);
  double worst_fixed_hmean = 1e300;
  std::string worst_fixed_name;
  for (std::size_t c = 0; c < fixed.size(); ++c) {
    const double h = hmean(fixed_mteps[c]);
    if (h < worst_fixed_hmean) {
      worst_fixed_hmean = h;
      worst_fixed_name = fixed[c].name;
    }
  }
  const double min_ratio =
      *std::min_element(tuned_ratio.begin(), tuned_ratio.end());
  const double hmean_gain =
      worst_fixed_hmean > 0.0 ? tuned_hmean / worst_fixed_hmean : 0.0;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool gate_enforced = hw >= env.threads;
  const bool per_graph_ok = min_ratio >= 0.97;
  const bool hmean_ok = hmean_gain >= 1.3;
  const bool pass = !gate_enforced || (per_graph_ok && hmean_ok);

  std::printf(
      "\ntuned harmonic mean %.1f MTEPS; worst fixed (%s) %.1f MTEPS "
      "(gain %.2fx, gate >= 1.3x)  [%s]\n",
      tuned_hmean, worst_fixed_name.c_str(), worst_fixed_hmean, hmean_gain,
      !gate_enforced ? "REPORT-ONLY" : (hmean_ok ? "PASS" : "FAIL"));
  std::printf(
      "worst tuned-vs-best-fixed ratio %.3f (gate >= 0.97)  [%s]\n",
      min_ratio,
      !gate_enforced ? "REPORT-ONLY" : (per_graph_ok ? "PASS" : "FAIL"));
  if (!gate_enforced) {
    std::printf(
        "gates not enforced: host has %u hardware threads < %u configured "
        "workers (fixed configs oversubscribe; ratios are noise)\n",
        hw, env.threads);
  }

  JsonFields config;
  config.add_uint("div", env.div)
      .add_uint("threads", env.threads)
      .add_uint("sockets", env.sockets)
      .add_uint("runs", env.runs)
      .add_uint("seed", env.seed);
  metrics.add_num("tuned_hmean_mteps", tuned_hmean)
      .add_num("worst_fixed_hmean_mteps", worst_fixed_hmean)
      .add_str("worst_fixed_config", worst_fixed_name)
      .add_num("hmean_gain", hmean_gain)
      .add_num("min_tuned_vs_best_fixed", min_ratio)
      .add_uint("hardware_threads", hw)
      .add_bool("gate_enforced", gate_enforced)
      .add_bool("acceptance_pass", pass);
  if (write_bench_json("BENCH_autotune.json", "autotune",
                       std::time(nullptr), config, metrics)) {
    std::printf("wrote BENCH_autotune.json\n");
  }
  return check && !pass ? 1 : 0;
}
