// Sec. VI related-work comparison: synchronous vs asynchronous traversal
// and the work-stealing scheduler class.
//
// The paper's position: "Synchronous BFS algorithms are inherently more
// work-efficient in that they guarantee that the depth of all vertices is
// updated exactly once", while async methods suit large diameters by
// dropping barriers. This bench makes both halves measurable:
//   - work ratio: relaxations performed / edges the synchronous reference
//     traverses (1.00 == perfectly work-efficient; async pays > 1);
//   - barrier cost: per-step overheads dominate the sync engines on the
//     6230-level road-class graph.
#include <cstdio>

#include "baseline/async_bfs.h"
#include "baseline/parallel_atomic_bfs.h"
#include "baseline/work_stealing_bfs.h"
#include "bench_common.h"
#include "gen/proxies.h"
#include "gen/rmat.h"
#include "graph/adjacency_array.h"
#include "graph/stats.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fastbfs;
  using namespace fastbfs::bench;
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);
  env.print_header(
      "Sec. VI: synchronous vs asynchronous vs work-stealing traversal",
      "sync updates every depth exactly once; async drops barriers at the "
      "price of re-relaxations");

  const vid_t n = env.scaled_vertices(8u << 20);
  struct Workload {
    const char* name;
    CsrGraph g;
  };
  const Workload workloads[] = {
      {"RMAT (low diameter)",
       rmat_graph(floor_log2(ceil_pow2(n)), 8, env.seed)},
      {"road-class (high diameter)",
       layered_graph(n / 4, 2000, 1.3, env.seed)},
  };

  TextTable t({"graph", "engine", "MTEPS", "work ratio", "barriers"});
  for (const Workload& w : workloads) {
    const vid_t root = pick_nonisolated_root(w.g, env.seed);
    const BfsResult ref = reference_bfs(w.g, root);
    const double ref_edges = static_cast<double>(ref.edges_traversed);

    const AdjacencyArray adj(w.g, env.sockets);
    const Measured ours =
        measure_two_phase(adj, env.engine_options(), env.runs, env.seed);
    t.add_row({w.name, "two-phase (sync)", TextTable::num(ours.mteps, 1),
               TextTable::num(ours.edges / ref_edges, 2),
               "4 per level"});

    baseline::SinglePhaseOptions aopts;
    aopts.n_threads = env.threads;
    const Measured atomic =
        measure_single_phase(w.g, aopts, env.runs, env.seed);
    t.add_row({w.name, "atomic single-phase (sync)",
               TextTable::num(atomic.mteps, 1),
               TextTable::num(atomic.edges / ref_edges, 2), "2 per level"});

    const BfsResult ws = baseline::work_stealing_bfs(w.g, root, env.threads);
    t.add_row({w.name, "work-stealing (sync)",
               TextTable::num(mteps(ws.edges_traversed, ws.seconds), 1),
               TextTable::num(static_cast<double>(ws.edges_traversed) /
                                  ref_edges,
                              2),
               "3 per level"});

    const BfsResult as = baseline::async_bfs(w.g, root, env.threads);
    t.add_row({w.name, "async label-correcting",
               TextTable::num(mteps(as.edges_traversed, as.seconds), 1),
               TextTable::num(static_cast<double>(as.edges_traversed) /
                                  ref_edges,
                              2),
               "none"});
  }
  std::fputs(t.to_string().c_str(), stdout);
  std::printf(
      "\n'work ratio' counts edge relaxations against the synchronous\n"
      "reference: the sync engines sit at ~1.00 (the paper's\n"
      "work-efficiency guarantee, modulo <=0.2%% benign duplicates); the\n"
      "async corrector pays the re-relaxation overhead the paper cites as\n"
      "its reason to go synchronous.\n");
  return 0;
}
