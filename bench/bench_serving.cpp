// BFS-as-a-service load generator: sequential-only serving vs adaptive
// MS-64 micro-batching (serve/service.h), the serving tentpole of
// DESIGN.md §5g.
//
// Claim under test: at saturation (a closed loop of 64 concurrent
// clients), coalescing concurrent queries into MS-64 waves sustains at
// least 2x the QPS of dispatching them one at a time through the same
// engine — the serving-path restatement of the MS-BFS amortization claim
// (bench_msbfs). The acceptance configuration is RMAT scale-18 ef-16:
// run with --div=1 (or --scale=paper) to measure it unscaled.
//
// Two arrival models, per the serving literature:
//   closed  C clients, each submits, waits for its response, repeats —
//           concurrency is pinned at C (rows at C = 1, 8, 64);
//   open    queries arrive on a seeded exponential (Poisson) process at
//           --rate-qps, regardless of completions — latency under an
//           offered load. Default rate: half the measured adaptive
//           saturation QPS, so the open rows are stable by construction.
//
// Modes:
//   (default)        in-process: drives BfsService directly, per-config
//                    service-side p50/p99 from the latency histogram;
//   --connect=H:P    TCP: closed-loop clients against a running
//                    fastbfs_serve, client-side latency percentiles
//                    (this is what the serve-smoke CI job runs);
//   --shutdown       after measuring, send a kShutdown frame (TCP mode).
//
// Emits BENCH_serving.json (write_bench_json schema) for CI trending.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "gen/rmat.h"
#include "graph/stats.h"
#include "serve/proto.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

using namespace fastbfs;
using namespace fastbfs::bench;
using namespace fastbfs::serve;

struct LoadResult {
  std::string mode;     // "seq" | "ms64"
  std::string arrival;  // "closed" | "open"
  unsigned clients = 0;  // closed: loop size; open: offered rate (qps)
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t late = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double occupancy_mean = 0.0;
};

// --- in-process driver --------------------------------------------------

/// Response sink for the in-process loops: counts outcomes and, in closed
/// mode, wakes the one client (id >> 32) whose query completed.
class LoadSink : public ResponseSink {
 public:
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };

  explicit LoadSink(unsigned n_clients) : gates_(n_clients) {}

  void on_response(const ResponseView& v) override {
    switch (v.header.status) {
      case Status::kOk:
        ok_.fetch_add(1, std::memory_order_relaxed);
        if (v.header.deadline_missed) {
          late_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      default:
        rejected_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    const std::uint64_t n = responses_.fetch_add(1) + 1;
    if (!gates_.empty()) {
      Gate& g = gates_[v.header.id >> 32];
      std::lock_guard<std::mutex> lk(g.mu);
      g.done = true;
      g.cv.notify_one();
    }
    std::lock_guard<std::mutex> lk(all_mu_);
    if (n >= target_) all_cv_.notify_all();
  }

  void await_query(unsigned client) {
    Gate& g = gates_[client];
    std::unique_lock<std::mutex> lk(g.mu);
    g.cv.wait(lk, [&] { return g.done; });
    g.done = false;
  }

  void await_total(std::uint64_t target) {
    std::unique_lock<std::mutex> lk(all_mu_);
    target_ = target;
    all_cv_.wait(lk, [&] { return responses_.load() >= target; });
  }

  std::uint64_t ok() const { return ok_.load(); }
  std::uint64_t rejected() const { return rejected_.load(); }
  std::uint64_t late() const { return late_.load(); }

 private:
  std::vector<Gate> gates_;
  std::atomic<std::uint64_t> responses_{0}, ok_{0}, rejected_{0}, late_{0};
  std::mutex all_mu_;
  std::condition_variable all_cv_;
  std::uint64_t target_ = ~0ull;
};

struct ServeParams {
  BfsOptions engine;
  unsigned dispatchers = 1;
  tick_t window_ns = 200'000;
  std::uint64_t deadline_us = 0;
  bool sequential_only = false;
};

ServiceConfig service_config(const ServeParams& p) {
  ServiceConfig cfg;
  cfg.engine = p.engine;
  cfg.n_dispatchers = p.dispatchers;
  cfg.batcher.wave_width = p.sequential_only ? 1 : kMsWaveWidth;
  cfg.batcher.window_ns = p.window_ns;
  cfg.batcher.queue_capacity = 4096;
  return cfg;
}

void finish_result(LoadResult& r, const BfsService& svc,
                   const LoadSink& sink, double seconds) {
  const ServeCounters c = svc.counters();
  r.completed = c.completed;
  r.rejected = sink.rejected();
  r.late = sink.late();
  r.seconds = seconds;
  r.qps = seconds > 0.0 ? static_cast<double>(c.completed) / seconds : 0.0;
  r.p50_ms = svc.latency_quantile_ns(0.5) / 1e6;
  r.p99_ms = svc.latency_quantile_ns(0.99) / 1e6;
  const std::uint64_t dispatches = c.waves + c.sequential_runs;
  r.occupancy_mean =
      dispatches > 0
          ? static_cast<double>(c.completed) / static_cast<double>(dispatches)
          : 0.0;
}

/// Closed loop, in process: `clients` threads, one outstanding query each.
LoadResult run_closed(const CsrGraph& g, const ServeParams& params,
                      unsigned clients, unsigned queries_per_client,
                      std::uint64_t seed) {
  LoadResult r;
  r.mode = params.sequential_only ? "seq" : "ms64";
  r.arrival = "closed";
  r.clients = clients;

  LoadSink sink(clients);
  SteadyClock clock;
  BfsService svc(service_config(params), clock, sink);
  svc.add_graph(g);
  svc.start();

  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Xoshiro256 rng(seed + c);
      for (unsigned q = 0; q < queries_per_client; ++q) {
        QueryRequest req;
        req.id = (static_cast<std::uint64_t>(c) << 32) | q;
        req.root = pick_nonisolated_root(g, rng.next());
        req.deadline_us = params.deadline_us;
        svc.submit(req, nullptr);  // rejections still answer the gate
        sink.await_query(c);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();
  svc.stop();
  finish_result(r, svc, sink, seconds);
  return r;
}

/// Open loop, in process: Poisson arrivals at `rate_qps`, completion lags
/// arrival freely; the run is bounded by `total` queries.
LoadResult run_open(const CsrGraph& g, const ServeParams& params,
                    double rate_qps, std::uint64_t total,
                    std::uint64_t seed) {
  LoadResult r;
  r.mode = params.sequential_only ? "seq" : "ms64";
  r.arrival = "open";
  r.clients = static_cast<unsigned>(rate_qps);

  LoadSink sink(1);
  SteadyClock clock;
  BfsService svc(service_config(params), clock, sink);
  svc.add_graph(g);
  svc.start();

  Xoshiro256 rng(seed);
  Timer wall;
  double next_arrival = 0.0;  // seconds since start
  for (std::uint64_t i = 0; i < total; ++i) {
    // Seeded exponential inter-arrival: -ln(U) / rate.
    const double u =
        (static_cast<double>(rng.next() >> 11) + 1.0) / 9007199254740993.0;
    next_arrival += -std::log(u) / rate_qps;
    const double lag = next_arrival - wall.seconds();
    if (lag > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(static_cast<std::int64_t>(lag * 1e9)));
    }
    QueryRequest req;
    req.id = i;  // id >> 32 == 0: all responses hit gate 0 (never awaited)
    req.root = pick_nonisolated_root(g, rng.next());
    req.deadline_us = params.deadline_us;
    svc.submit(req, nullptr);
  }
  sink.await_total(total);
  const double seconds = wall.seconds();
  svc.stop();
  finish_result(r, svc, sink, seconds);
  // In a stable open loop throughput is the offered rate; what the row
  // actually reports is the latency distribution under that load.
  return r;
}

// --- TCP driver (serve-smoke) -------------------------------------------

/// Minimal blocking client: one connection, one outstanding query.
class SocketClient {
 public:
  bool connect_to(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return true;
  }
  ~SocketClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_frame(const std::vector<std::uint8_t>& buf) {
    std::size_t off = 0;
    while (off < buf.size()) {
      const ssize_t n = ::send(fd_, buf.data() + off, buf.size() - off, 0);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool read_response(QueryResponse& out) {
    for (;;) {
      FrameView frame;
      if (try_frame(rbuf_.data(), used_, kMaxResponsePayload, frame) ==
          DecodeError::kNone) {
        const bool ok =
            decode_response(frame.payload, frame.payload_len, out) ==
            DecodeError::kNone;
        std::memmove(rbuf_.data(), rbuf_.data() + frame.frame_len,
                     used_ - frame.frame_len);
        used_ -= frame.frame_len;
        return ok;
      }
      if (rbuf_.size() - used_ < 65536) rbuf_.resize(used_ + 65536);
      const ssize_t n =
          ::recv(fd_, rbuf_.data() + used_, rbuf_.size() - used_, 0);
      if (n <= 0) return false;
      used_ += static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> rbuf_;
  std::size_t used_ = 0;
};

/// Closed loop over TCP; latency measured client-side per query.
LoadResult run_socket_closed(const std::string& host, std::uint16_t port,
                             vid_t n_vertices, unsigned clients,
                             unsigned queries_per_client,
                             std::uint64_t seed) {
  LoadResult r;
  r.mode = "server";
  r.arrival = "closed";
  r.clients = clients;

  std::vector<std::vector<double>> lat(clients);
  std::atomic<std::uint64_t> completed{0}, rejected{0}, late{0};
  std::atomic<bool> failed{false};

  Timer wall;
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      SocketClient client;
      if (!client.connect_to(host, port)) {
        failed.store(true);
        return;
      }
      Xoshiro256 rng(seed + c);
      std::vector<std::uint8_t> buf;
      lat[c].reserve(queries_per_client);
      for (unsigned q = 0; q < queries_per_client; ++q) {
        QueryRequest req;
        req.id = (static_cast<std::uint64_t>(c) << 32) | q;
        req.root = static_cast<vid_t>(rng.next_below(n_vertices));
        buf.clear();
        encode_query(buf, req);
        Timer t;
        QueryResponse resp;
        if (!client.send_frame(buf) || !client.read_response(resp)) {
          failed.store(true);
          return;
        }
        lat[c].push_back(t.seconds());
        if (resp.status == Status::kOk) {
          completed.fetch_add(1, std::memory_order_relaxed);
          if (resp.deadline_missed) {
            late.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  r.seconds = wall.seconds();
  if (failed.load()) {
    std::fprintf(stderr, "bench_serving: socket client failed\n");
    return r;
  }
  r.completed = completed.load();
  r.rejected = rejected.load();
  r.late = late.load();
  r.qps = r.seconds > 0.0 ? static_cast<double>(r.completed) / r.seconds : 0.0;

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  if (!all.empty()) {
    const auto nth = [&](double q) {
      const std::size_t i =
          static_cast<std::size_t>(q * static_cast<double>(all.size() - 1));
      std::nth_element(all.begin(), all.begin() + i, all.end());
      return all[i] * 1e3;
    };
    r.p50_ms = nth(0.5);
    r.p99_ms = nth(0.99);
  }
  return r;
}

void add_row(TextTable& t, const LoadResult& r) {
  t.add_row({r.mode, r.arrival, TextTable::num(std::uint64_t{r.clients}),
             TextTable::num(r.qps, 1), TextTable::num(r.p50_ms, 2),
             TextTable::num(r.p99_ms, 2),
             TextTable::num(r.occupancy_mean, 1),
             TextTable::num(r.completed), TextTable::num(r.rejected)});
}

std::string rows_json(const std::vector<LoadResult>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LoadResult& r = rows[i];
    JsonFields f;
    f.add_str("mode", r.mode)
        .add_str("arrival", r.arrival)
        .add_uint("clients", r.clients)
        .add_num("qps", r.qps)
        .add_num("p50_ms", r.p50_ms)
        .add_num("p99_ms", r.p99_ms)
        .add_num("occupancy_mean", r.occupancy_mean)
        .add_num("seconds", r.seconds)
        .add_uint("completed", r.completed)
        .add_uint("rejected", r.rejected)
        .add_uint("late", r.late);
    if (i > 0) out += ", ";
    out += f.str();
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  BenchEnv env = BenchEnv::from_cli(args);

  const std::string connect = args.get("connect");
  const auto queries_per_client = static_cast<unsigned>(
      args.get_int("queries-per-client", connect.empty() ? 48 : 16));
  const auto deadline_us =
      static_cast<std::uint64_t>(args.get_int("deadline-us", 0));
  const bool do_shutdown = args.get_bool("shutdown", false);

  TextTable table({"mode", "arrival", "clients/rate", "QPS", "p50 ms",
                   "p99 ms", "wave occ", "done", "rej"});
  std::vector<LoadResult> rows;
  JsonFields config;
  bool pass = true;
  double speedup = 0.0;

  if (!connect.empty()) {
    // --- TCP mode: measure a running fastbfs_serve -------------------
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect wants host:port\n");
      return 2;
    }
    const std::string host = connect.substr(0, colon);
    const auto port =
        static_cast<std::uint16_t>(std::stoi(connect.substr(colon + 1)));
    const auto n_vertices = static_cast<vid_t>(
        args.get_int("vertices", 1 << 14));  // server's graph size
    const auto clients =
        static_cast<unsigned>(args.get_int("clients", 8));

    std::printf("bench_serving: TCP closed loop against %s (%u clients x "
                "%u queries)\n",
                connect.c_str(), clients, queries_per_client);
    LoadResult r = run_socket_closed(host, port, n_vertices, clients,
                                     queries_per_client, env.seed);
    rows.push_back(r);
    add_row(table, r);
    pass = r.completed > 0 && r.qps > 0.0;

    if (do_shutdown) {
      SocketClient admin;
      if (admin.connect_to(host, port)) {
        std::vector<std::uint8_t> buf;
        encode_shutdown(buf);
        QueryResponse resp;
        if (admin.send_frame(buf) && admin.read_response(resp) &&
            resp.status == Status::kShuttingDown) {
          std::printf("server acknowledged shutdown\n");
        } else {
          std::fprintf(stderr, "shutdown frame not acknowledged\n");
          pass = false;
        }
      }
    }
    config.add_str("connect", connect)
        .add_uint("clients", clients)
        .add_uint("queries_per_client", queries_per_client);
  } else {
    // --- in-process mode: sequential-only vs adaptive MS-64 ----------
    env.print_header(
        "BFS-as-a-service: sequential-only vs adaptive MS-64 micro-batching",
        "acceptance: RMAT ef-16, 64-client closed loop -> ms64 QPS >= 2x");
    const unsigned scale =
        floor_log2(ceil_pow2(env.scaled_vertices(1u << 18)));
    std::printf("graph: RMAT scale-%u ef-16, seed %llu\n\n", scale,
                static_cast<unsigned long long>(env.seed));
    const CsrGraph g = rmat_graph(scale, 16, env.seed);

    ServeParams params;
    params.engine = env.engine_options();
    params.dispatchers =
        static_cast<unsigned>(args.get_int("dispatchers", 1));
    params.window_ns =
        static_cast<tick_t>(args.get_int("window-us", 200)) * 1000;
    params.deadline_us = deadline_us;

    double seq_sat_qps = 0.0, ms_sat_qps = 0.0;
    for (const bool sequential_only : {true, false}) {
      params.sequential_only = sequential_only;
      for (const unsigned clients : {1u, 8u, 64u}) {
        LoadResult r =
            run_closed(g, params, clients, queries_per_client, env.seed);
        if (clients == 64) {
          (sequential_only ? seq_sat_qps : ms_sat_qps) = r.qps;
        }
        rows.push_back(r);
        add_row(table, r);
      }
    }

    // Open-loop rows at a rate both configs can absorb: half the adaptive
    // saturation QPS (or --rate-qps). Reported for the latency shape.
    double rate = args.get_double("rate-qps", 0.0);
    if (rate <= 0.0) rate = std::max(50.0, ms_sat_qps / 2.0);
    const auto open_total =
        static_cast<std::uint64_t>(args.get_int("open-queries", 512));
    for (const bool sequential_only : {true, false}) {
      params.sequential_only = sequential_only;
      LoadResult r = run_open(g, params, rate, open_total, env.seed);
      rows.push_back(r);
      add_row(table, r);
    }

    speedup = seq_sat_qps > 0.0 ? ms_sat_qps / seq_sat_qps : 0.0;
    pass = speedup >= 2.0;
    config.add_str("graph", "rmat")
        .add_uint("scale", scale)
        .add_int("edge_factor", 16)
        .add_uint("threads", env.threads)
        .add_uint("sockets", env.sockets)
        .add_uint("dispatchers", params.dispatchers)
        .add_uint("window_us", params.window_ns / 1000)
        .add_uint("deadline_us", deadline_us)
        .add_uint("queries_per_client", queries_per_client)
        .add_num("open_rate_qps", rate);
  }

  std::fputs(table.to_string().c_str(), stdout);
  if (connect.empty()) {
    std::printf(
        "\nacceptance (64-client closed loop, ms64 QPS / seq QPS >= 2x): "
        "%.2fx  [%s]\n",
        speedup, pass ? "PASS" : "FAIL");
  } else {
    std::printf("\nsmoke (nonzero QPS over the socket): [%s]\n",
                pass ? "PASS" : "FAIL");
  }

  JsonFields metrics;
  metrics.add_num("acceptance_speedup", speedup)
      .add_bool("acceptance_pass", pass)
      .add_raw("rows", rows_json(rows));
  if (write_bench_json("BENCH_serving.json", "serving", std::time(nullptr),
                       config, metrics)) {
    std::printf("wrote BENCH_serving.json\n");
  }
  return pass ? 0 : 1;
}
